#include "runtime/engine.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::runtime {

namespace {

// External streams live far above anything MemoryLayout hands out, so they
// can grow without bound and never collide with state/buffer regions.
constexpr iomodel::Addr kExternalInBase = iomodel::Addr{1} << 40;
constexpr iomodel::Addr kExternalOutBase = iomodel::Addr{1} << 41;

}  // namespace

std::int64_t layout_footprint_words(const sdf::SdfGraph& g,
                                    std::span<const std::int64_t> buffer_caps,
                                    std::int64_t block_words,
                                    bool block_align_buffers) {
  CCS_EXPECTS(buffer_caps.size() == static_cast<std::size_t>(g.edge_count()),
              "one buffer capacity per edge required");
  // Mirrors the constructor's allocation sequence exactly: state regions
  // block-aligned, channel rings packed unless block_align_buffers.
  iomodel::MemoryLayout layout(block_words, 0);
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    layout.allocate(g.node(v).state, "state");
  }
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    layout.allocate(buffer_caps[static_cast<std::size_t>(e)], "buf", block_align_buffers);
  }
  return layout.footprint();
}

Engine::Engine(const sdf::SdfGraph& g, std::vector<std::int64_t> buffer_caps,
               iomodel::CacheSim& cache, EngineOptions options)
    : graph_(&g),
      cache_(&cache),
      options_(options),
      layout_(cache.config().block_words, options.address_base) {
  CCS_EXPECTS(g.node_count() > 0, "cannot build an engine for an empty graph");
  CCS_EXPECTS(options_.address_base >= 0 && options_.address_base < kExternalInBase,
              "address base must stay below the external-stream bands");
  CCS_EXPECTS(buffer_caps.size() == static_cast<std::size_t>(g.edge_count()),
              "one buffer capacity per edge required");

  std::vector<iomodel::Region> state;
  state.reserve(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    state.push_back(layout_.allocate(g.node(v).state, "state:" + g.node(v).name));
    state_words_ += g.node(v).state;
  }
  channels_.reserve(static_cast<std::size_t>(g.edge_count()));
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    const std::int64_t cap = buffer_caps[static_cast<std::size_t>(e)];
    if (cap < std::max(edge.out_rate, edge.in_rate)) {
      throw ScheduleError("buffer on " + g.node(edge.src).name + " -> " +
                          g.node(edge.dst).name + " (capacity " + std::to_string(cap) +
                          ") cannot hold one burst");
    }
    // Buffers are packed (not block-aligned) by default: dozens of one-word
    // minimal channels must not consume a cache block each, or the paper's
    // sum(minBuf) = O(state) assumption silently becomes O(edges * B).
    channels_.emplace_back(
        layout_.allocate(cap, "buf:" + g.node(edge.src).name + ">" + g.node(edge.dst).name,
                         options_.block_align_buffers),
        cap);
  }
  // The whole state/buffer layout must sit below the external-stream bands,
  // or a co-resident engine's regions would silently alias another's
  // external streams instead of contending for blocks.
  CCS_EXPECTS(layout_.footprint() <= kExternalInBase,
              "state/buffer layout overflows into the external-stream bands "
              "(address base too high for this graph's footprint)");
  fired_.assign(static_cast<std::size_t>(g.node_count()), 0);
  node_miss_base_.assign(static_cast<std::size_t>(g.node_count()), 0);
  sizes_scratch_.assign(static_cast<std::size_t>(g.edge_count()), 0);

  const auto sources = g.sources();
  const auto sinks = g.sinks();
  if (sources.size() == 1) source_ = sources.front();
  if (sinks.size() == 1) sink_ = sinks.front();
  external_in_ = iomodel::Region{kExternalInBase + options_.address_base, 0};
  external_out_ = iomodel::Region{kExternalOutBase + options_.address_base, 0};

  // Precompute one firing plan per module so fire() never walks the graph.
  plans_.resize(static_cast<std::size_t>(g.node_count()));
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
    FiringPlan& plan = plans_[static_cast<std::size_t>(v)];
    plan.in_begin = static_cast<std::int32_t>(in_ports_.size());
    for (const sdf::EdgeId e : g.in_edges(v)) {
      in_ports_.push_back(Port{e, g.edge(e).in_rate});
    }
    plan.in_end = static_cast<std::int32_t>(in_ports_.size());
    plan.out_begin = static_cast<std::int32_t>(out_ports_.size());
    for (const sdf::EdgeId e : g.out_edges(v)) {
      out_ports_.push_back(Port{e, g.edge(e).out_rate});
    }
    plan.out_end = static_cast<std::int32_t>(out_ports_.size());
    plan.state = state[static_cast<std::size_t>(v)];
    plan.is_source = v == source_;
    plan.is_sink = v == sink_;
  }
}

bool Engine::can_fire(sdf::NodeId v) const {
  CCS_EXPECTS(v >= 0 && v < graph_->node_count(), "node id out of range");
  if (options_.credit_input && v == source_ && input_credit_ <= 0) return false;
  bool underflow = false;
  const auto live = [this](std::int32_t ch) {
    return channels_[static_cast<std::size_t>(ch)].size();
  };
  return first_blocked_port(v, live, underflow) == nullptr;
}

bool Engine::try_fire(sdf::NodeId v) noexcept {
  if (v < 0 || v >= graph_->node_count()) return false;
  if (options_.credit_input && v == source_ && input_credit_ <= 0) return false;
  bool underflow = false;
  const auto live = [this](std::int32_t ch) {
    return channels_[static_cast<std::size_t>(ch)].size();
  };
  if (first_blocked_port(v, live, underflow) != nullptr) return false;
  fire_unchecked(v);
  return true;
}

void Engine::push_input(std::int64_t count) {
  CCS_EXPECTS(options_.credit_input,
              "push_input requires EngineOptions::credit_input");
  CCS_EXPECTS(count >= 0, "input credit must be non-negative");
  input_credit_ = input_credit_ > kUnlimitedCredit - count ? kUnlimitedCredit
                                                           : input_credit_ + count;
}

void Engine::throw_blocked(sdf::NodeId v, const Port& p, bool underflow) const {
  throw ScheduleError("firing '" + graph_->node(v).name + "' would " +
                      (underflow ? "underflow" : "overflow") + " channel " +
                      std::to_string(p.channel));
}

void Engine::validate_sequence(std::span<const sdf::NodeId> firings) {
  // Token-count replay: pure integer arithmetic, no cache traffic. Proves
  // the whole sequence feasible so the execution loop can skip per-firing
  // re-validation; throws the same errors fire() would, before any firing
  // has executed.
  for (std::size_t e = 0; e < channels_.size(); ++e) sizes_scratch_[e] = channels_[e].size();
  std::int64_t credit = input_credit_;
  for (const sdf::NodeId v : firings) {
    CCS_EXPECTS(v >= 0 && v < graph_->node_count(), "node id out of range");
    if (options_.credit_input && v == source_ && credit-- <= 0) {
      throw ScheduleError("firing '" + graph_->node(v).name +
                          "' exceeds the granted external input credit");
    }
    bool underflow = false;
    const auto replayed = [this](std::int32_t ch) {
      return sizes_scratch_[static_cast<std::size_t>(ch)];
    };
    if (const Port* p = first_blocked_port(v, replayed, underflow)) {
      throw_blocked(v, *p, underflow);
    }
    const FiringPlan& plan = plans_[static_cast<std::size_t>(v)];
    for (std::int32_t i = plan.in_begin; i < plan.in_end; ++i) {
      const Port& p = in_ports_[static_cast<std::size_t>(i)];
      sizes_scratch_[static_cast<std::size_t>(p.channel)] -= p.rate;
    }
    for (std::int32_t i = plan.out_begin; i < plan.out_end; ++i) {
      const Port& p = out_ports_[static_cast<std::size_t>(i)];
      sizes_scratch_[static_cast<std::size_t>(p.channel)] += p.rate;
    }
  }
}

void Engine::fire(sdf::NodeId v) {
  CCS_EXPECTS(v >= 0 && v < graph_->node_count(), "node id out of range");
  if (options_.credit_input && v == source_ && input_credit_ <= 0) {
    throw ScheduleError("firing '" + graph_->node(v).name +
                        "' exceeds the granted external input credit");
  }
  // Validate both directions before any memory traffic so a throwing fire
  // leaves token counts unchanged.
  bool underflow = false;
  const auto live = [this](std::int32_t ch) {
    return channels_[static_cast<std::size_t>(ch)].size();
  };
  if (const Port* p = first_blocked_port(v, live, underflow)) {
    throw_blocked(v, *p, underflow);
  }
  fire_unchecked(v);
}

void Engine::fire_unchecked(sdf::NodeId v) {
  const FiringPlan& plan = plans_[static_cast<std::size_t>(v)];
  // One virtual stats() call per firing: the reference tracks the live
  // counters, so the per-phase snapshots below are plain loads.
  const iomodel::CacheStats& stats = cache_->stats();
  const std::int64_t miss_before = stats.misses;

  // Consume inputs, then execute (scan state), then produce outputs --
  // the natural data flow of a filter body. Phase boundaries snapshot the
  // miss counter so RunResult can break misses down by cause.
  for (std::int32_t i = plan.in_begin; i < plan.in_end; ++i) {
    const Port& p = in_ports_[static_cast<std::size_t>(i)];
    channels_[static_cast<std::size_t>(p.channel)].pop(p.rate, *cache_);
  }
  const std::int64_t after_pops = stats.misses;
  if (options_.model_external_io && plan.is_source) {
    cache_->access(external_in_.base + external_in_cursor_++, iomodel::AccessMode::kRead);
  }
  const std::int64_t after_in = stats.misses;
  // State regions are block-aligned, so the span touches exactly
  // ceil(state/B) blocks in one bulk transaction.
  if (plan.state.words > 0) {
    cache_->access_span(plan.state.base, plan.state.words, iomodel::AccessMode::kRead);
  }
  const std::int64_t after_state = stats.misses;
  for (std::int32_t i = plan.out_begin; i < plan.out_end; ++i) {
    const Port& p = out_ports_[static_cast<std::size_t>(i)];
    channels_[static_cast<std::size_t>(p.channel)].push(p.rate, *cache_);
  }
  const std::int64_t after_pushes = stats.misses;
  if (options_.model_external_io && plan.is_sink) {
    cache_->access(external_out_.base + external_out_cursor_++,
                   iomodel::AccessMode::kWrite);
  }
  channel_misses_ += (after_pops - miss_before) + (after_pushes - after_state);
  io_misses_ += (after_in - after_pops) + (stats.misses - after_pushes);
  state_misses_ += after_state - after_in;

  ++fired_[static_cast<std::size_t>(v)];
  ++total_firings_;
  if (plan.is_source) {
    ++source_firings_;
    if (options_.credit_input && input_credit_ != kUnlimitedCredit) --input_credit_;
  }
  if (plan.is_sink) ++sink_firings_;
  if (options_.per_node_attribution) {
    node_miss_base_[static_cast<std::size_t>(v)] += stats.misses - miss_before;
  }
  CCS_AUDIT_BLOCK(if ((++audit_tick_ & 63) == 0) audit_invariants(););
}

RunResult Engine::delta_counters() const {
  RunResult result;
  const iomodel::CacheStats& now = cache_->stats();
  result.cache.accesses = now.accesses - last_stats_.accesses;
  result.cache.hits = now.hits - last_stats_.hits;
  result.cache.misses = now.misses - last_stats_.misses;
  result.cache.writebacks = now.writebacks - last_stats_.writebacks;
  result.firings = total_firings_ - last_firings_;
  result.source_firings = source_firings_ - last_source_firings_;
  result.sink_firings = sink_firings_ - last_sink_firings_;
  result.state_misses = state_misses_ - last_state_misses_;
  result.channel_misses = channel_misses_ - last_channel_misses_;
  result.io_misses = io_misses_ - last_io_misses_;
  if (options_.per_node_attribution) result.node_misses = node_miss_base_;
  return result;
}

void Engine::advance_baselines() {
  last_stats_ = cache_->stats();
  last_firings_ = total_firings_;
  last_source_firings_ = source_firings_;
  last_sink_firings_ = sink_firings_;
  last_state_misses_ = state_misses_;
  last_channel_misses_ = channel_misses_;
  last_io_misses_ = io_misses_;
  node_miss_base_.assign(node_miss_base_.size(), 0);
}

void Engine::audit_invariants() const {
  // Channel plane: token counts must stay inside [0, capacity]; anything
  // else means a firing moved tokens past the feasibility check.
  for (const Channel& c : channels_) {
    CCS_CHECK(c.size() >= 0, "channel token count went negative");
    CCS_CHECK(c.size() <= c.capacity(), "channel holds more tokens than its capacity");
  }
  // Credit plane: consuming credit below zero means a source firing slipped
  // past the metering gate (can_fire/try_fire/validate_sequence).
  CCS_CHECK(input_credit_ >= 0 || input_credit_ == kUnlimitedCredit,
            "external input credit went negative");
  // Firing-plan plane: every plan's port spans must be well-formed windows
  // into the flattened port arrays, and every port must name a real channel
  // with a positive rate -- fire_unchecked indexes through these with no
  // bounds checks of its own.
  const auto in_count = static_cast<std::int32_t>(in_ports_.size());
  const auto out_count = static_cast<std::int32_t>(out_ports_.size());
  for (const FiringPlan& plan : plans_) {
    CCS_CHECK(plan.in_begin >= 0 && plan.in_begin <= plan.in_end && plan.in_end <= in_count,
              "firing plan input span outside the flattened port array");
    CCS_CHECK(plan.out_begin >= 0 && plan.out_begin <= plan.out_end &&
                  plan.out_end <= out_count,
              "firing plan output span outside the flattened port array");
    CCS_CHECK(plan.state.words >= 0, "firing plan names a negative-size state region");
  }
  const auto channel_count = static_cast<std::int32_t>(channels_.size());
  for (const Port& p : in_ports_) {
    CCS_CHECK(p.channel >= 0 && p.channel < channel_count,
              "input port names a channel outside the engine");
    CCS_CHECK(p.rate > 0, "input port rate must be positive");
  }
  for (const Port& p : out_ports_) {
    CCS_CHECK(p.channel >= 0 && p.channel < channel_count,
              "output port names a channel outside the engine");
    CCS_CHECK(p.rate > 0, "output port rate must be positive");
  }
  // Counter plane: classified misses and per-kind firing tallies can never
  // exceed the totals they partition.
  CCS_CHECK(total_firings_ >= source_firings_ && total_firings_ >= sink_firings_,
            "per-kind firing tally exceeds the total firing count");
  CCS_CHECK(state_misses_ >= 0 && channel_misses_ >= 0 && io_misses_ >= 0,
            "classified miss counter went negative");
}

RunResult Engine::snapshot() const { return delta_counters(); }

FootprintSample Engine::footprint_sample() const noexcept {
  FootprintSample sample;
  sample.layout_words = layout_span().words;
  sample.state_words = state_words_;
  sample.accesses = cache_->stats().accesses;
  sample.misses = cache_->stats().misses;
  return sample;
}

RunResult Engine::take() {
  CCS_AUDIT_BLOCK(audit_invariants(););
  RunResult result = delta_counters();
  advance_baselines();
  return result;
}

RunResult Engine::run(std::span<const sdf::NodeId> firings) {
  validate_sequence(firings);
  for (const sdf::NodeId v : firings) fire_unchecked(v);
  return take();
}

bool Engine::drained() const {
  return std::all_of(channels_.begin(), channels_.end(),
                     [](const Channel& c) { return c.empty(); });
}

void Engine::reset_tokens() {
  for (Channel& c : channels_) c.reset();
  fired_.assign(fired_.size(), 0);
}

void Engine::rebind_cache(iomodel::CacheSim& cache) {
  CCS_EXPECTS(cache.config().block_words == cache_->config().block_words,
              "rebind requires the same block size (the memory layout depends on it)");
  cache_ = &cache;
  reset_tokens();
  input_credit_ = 0;
  external_in_cursor_ = 0;
  external_out_cursor_ = 0;
  source_firings_ = 0;
  sink_firings_ = 0;
  total_firings_ = 0;
  last_firings_ = 0;
  last_source_firings_ = 0;
  last_sink_firings_ = 0;
  state_misses_ = 0;
  channel_misses_ = 0;
  io_misses_ = 0;
  last_state_misses_ = 0;
  last_channel_misses_ = 0;
  last_io_misses_ = 0;
  node_miss_base_.assign(node_miss_base_.size(), 0);
  last_stats_ = cache.stats();
}

EngineState Engine::save_state() const {
  // Quiescence check: all engine-local deltas must have been taken, or the
  // re-anchored baselines on restore would silently swallow them. (Cache
  // deltas are NOT checked -- on a shared cache other tenants' traffic
  // shows up there, and resync_cache_baseline handles it per window.)
  CCS_EXPECTS(total_firings_ == last_firings_ && state_misses_ == last_state_misses_ &&
                  channel_misses_ == last_channel_misses_ && io_misses_ == last_io_misses_,
              "save_state requires a quiescent engine (take() the pending counters first)");
  EngineState s;
  s.channel_heads.reserve(channels_.size());
  s.channel_sizes.reserve(channels_.size());
  for (const Channel& c : channels_) {
    s.channel_heads.push_back(c.head());
    s.channel_sizes.push_back(c.size());
  }
  s.fired = fired_;
  s.input_credit = input_credit_;
  s.external_in_cursor = external_in_cursor_;
  s.external_out_cursor = external_out_cursor_;
  s.source_firings = source_firings_;
  s.sink_firings = sink_firings_;
  s.total_firings = total_firings_;
  s.state_misses = state_misses_;
  s.channel_misses = channel_misses_;
  s.io_misses = io_misses_;
  return s;
}

void Engine::restore_state(const EngineState& state) {
  if (state.channel_heads.size() != channels_.size() ||
      state.channel_sizes.size() != channels_.size() ||
      state.fired.size() != fired_.size()) {
    throw ScheduleError(
        "engine state shape mismatch: saved for a different graph or buffer "
        "assignment");
  }
  for (std::size_t e = 0; e < channels_.size(); ++e) {
    channels_[e].restore(state.channel_heads[e], state.channel_sizes[e]);
  }
  fired_ = state.fired;
  input_credit_ = state.input_credit;
  external_in_cursor_ = state.external_in_cursor;
  external_out_cursor_ = state.external_out_cursor;
  source_firings_ = state.source_firings;
  sink_firings_ = state.sink_firings;
  total_firings_ = state.total_firings;
  state_misses_ = state.state_misses;
  channel_misses_ = state.channel_misses;
  io_misses_ = state.io_misses;
  // Re-anchor every baseline at the restored lifetime counters: the state
  // was captured quiescent, so all deltas were zero then and are zero now.
  advance_baselines();
}

void Engine::migrate_cache(iomodel::CacheSim& cache) {
  CCS_EXPECTS(cache.config().block_words == cache_->config().block_words,
              "migration requires the same block size (the memory layout depends on it)");
  cache_ = &cache;
  last_stats_ = cache.stats();
}

}  // namespace ccs::runtime
