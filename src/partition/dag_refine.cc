#include "partition/dag_refine.h"

#include <algorithm>
#include <set>

#include "sdf/gain.h"
#include "util/contracts.h"

namespace ccs::partition {

namespace {

/// Bandwidth change if node v moves from its component to `target`:
/// an incident edge stops being a cross edge when the move unifies its
/// endpoints, and starts being one when it separates them.
Rational move_delta(const sdf::SdfGraph& g, const sdf::GainMap& gains, const Partition& p,
                    sdf::NodeId v, std::int32_t target) {
  Rational delta(0);
  const std::int32_t from = p.comp(v);
  auto edge_delta = [&](sdf::EdgeId e, sdf::NodeId other) {
    const std::int32_t oc = p.comp(other);
    const bool was_cross = oc != from;
    const bool now_cross = oc != target;
    if (was_cross && !now_cross) delta -= gains.edge_gain(e);
    if (!was_cross && now_cross) delta += gains.edge_gain(e);
  };
  for (const sdf::EdgeId e : g.in_edges(v)) edge_delta(e, g.edge(e).src);
  for (const sdf::EdgeId e : g.out_edges(v)) edge_delta(e, g.edge(e).dst);
  return delta;
}

/// Drops empty components, renumbering densely.
Partition compact(const Partition& p) {
  std::vector<std::int32_t> remap(static_cast<std::size_t>(p.num_components), -1);
  std::int32_t next = 0;
  for (const std::int32_t c : p.assignment) {
    auto& slot = remap[static_cast<std::size_t>(c)];
    if (slot == -1) slot = next++;
  }
  Partition out;
  out.num_components = next;
  out.assignment.reserve(p.assignment.size());
  for (const std::int32_t c : p.assignment) {
    out.assignment.push_back(remap[static_cast<std::size_t>(c)]);
  }
  return out;
}

}  // namespace

Partition refine_partition(const sdf::SdfGraph& g, const Partition& p,
                           const RefineOptions& options) {
  CCS_EXPECTS(options.state_bound > 0, "state bound must be positive");
  CCS_EXPECTS(is_well_ordered(g, p), "refinement requires a well-ordered start");
  CCS_EXPECTS(is_bounded(g, p, options.state_bound), "start partition exceeds the bound");

  const sdf::GainMap gains(g);
  Partition cur = p;
  auto states = component_states(g, cur);

  for (std::int32_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (sdf::NodeId v = 0; v < g.node_count(); ++v) {
      const std::int32_t from = cur.comp(v);
      // Candidate targets: components of neighbors (plus a fresh singleton
      // if allowed). Moving elsewhere can only add cross edges.
      std::set<std::int32_t> targets;
      for (const sdf::EdgeId e : g.in_edges(v)) targets.insert(cur.comp(g.edge(e).src));
      for (const sdf::EdgeId e : g.out_edges(v)) targets.insert(cur.comp(g.edge(e).dst));
      targets.erase(from);
      if (options.allow_new_components &&
          states[static_cast<std::size_t>(from)] > g.node(v).state) {
        targets.insert(cur.num_components);  // sentinel: fresh component
      }

      for (const std::int32_t target : targets) {
        const bool fresh = target == cur.num_components;
        if (!fresh && states[static_cast<std::size_t>(target)] + g.node(v).state >
                          options.state_bound) {
          continue;
        }
        const Rational delta = move_delta(g, gains, cur, v, target);
        if (!(delta < Rational(0))) continue;

        // Tentatively apply, then verify well-ordering of the contraction.
        Partition trial = cur;
        trial.assignment[static_cast<std::size_t>(v)] = target;
        if (fresh) ++trial.num_components;
        if (!is_well_ordered(g, trial)) continue;

        states[static_cast<std::size_t>(from)] -= g.node(v).state;
        if (fresh) {
          states.push_back(g.node(v).state);
        } else {
          states[static_cast<std::size_t>(target)] += g.node(v).state;
        }
        cur = std::move(trial);
        improved = true;
        break;  // re-enumerate targets for the next node against new state
      }
    }
    if (!improved) break;
  }

  cur = compact(cur);
  CCS_ENSURES(is_well_ordered(g, cur), "refinement must preserve well-ordering");
  CCS_ENSURES(is_bounded(g, cur, options.state_bound), "refinement must preserve the bound");
  return cur;
}

}  // namespace ccs::partition
