// The swap tier: idle sessions as compact byte images.
//
// A resident Stream costs host memory (engine, firing plans, channel
// objects) and a simulated address band worth of bookkeeping even when it
// is idle. The swap tier converts an idle session into (a) a SwapImage --
// a varint-packed byte buffer holding the session's complete mutable state
// (runtime::EngineState + accumulated RunResult + step count) -- and
// (b) the construction inputs (graph, partition, M, options) the serving
// layer already holds. Rehydration rebuilds the Stream (construction
// issues NO cache traffic) and restores the image; because the online
// policies replan from live state every step, the rehydrated session's
// subsequent behaviour is bit-identical to one that was never swapped --
// the invariant tests/session/swap_roundtrip_test.cc gates.
//
// SwapManager is the eviction policy: an LRU over resident sessions
// (touched on every push/step) choosing victims at quiescent points, plus
// the image store -- modeled on buffer-cache write-behind (evict lazily,
// only when admission needs room) and read-ahead's inverse (rehydrate
// transparently on the next push).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "runtime/engine.h"
#include "runtime/run_result.h"

namespace ccs::session {

/// The complete mutable state of one streaming session at a quiescent
/// point (mirrors core::StreamState; defined here so the codec does not
/// depend on the core layer above it).
struct SessionSnapshot {
  runtime::EngineState engine;
  runtime::RunResult totals;  ///< Session-lifetime accumulated counters.
  std::int64_t steps = 0;     ///< Progressing step() calls.

  friend bool operator==(const SessionSnapshot&, const SessionSnapshot&) = default;
};

/// A swapped-out session: the snapshot packed into a compact byte buffer
/// (unsigned LEB128 varints, zigzag for the signed counters -- idle
/// sessions' mostly-small counters pack to a few bytes each). pack() and
/// unpack() are exact inverses; unpack() throws ccs::Error on a truncated
/// or corrupt image.
class SwapImage {
 public:
  SwapImage() = default;

  /// Serializes a snapshot. Deterministic: equal snapshots produce
  /// byte-identical images.
  static SwapImage pack(const SessionSnapshot& snapshot);

  /// Deserializes; exact inverse of pack(). Throws ccs::Error when the
  /// image is truncated, has trailing bytes, or fails validation.
  SessionSnapshot unpack() const;

  /// Wraps raw bytes (a persisted or transported image) without validation;
  /// unpack() performs the full validation. Inverse of bytes().
  static SwapImage from_bytes(std::vector<std::uint8_t> bytes) {
    SwapImage image;
    image.bytes_ = std::move(bytes);
    return image;
  }

  std::int64_t size_bytes() const noexcept {
    return static_cast<std::int64_t>(bytes_.size());
  }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// LRU-of-resident-sessions eviction policy plus the swapped-image store.
/// Keys are opaque (the serving layer's TenantId). Deterministic: victim
/// selection depends only on the sequence of admit/touch/swap calls.
///
/// Thread-compatibility: deliberately NOT internally synchronized (no
/// mutex, so nothing here carries thread-safety annotations). The serving
/// layers drive it only from the controlling thread at quiescent points --
/// between run/take windows, never while worker threads are firing -- the
/// same confinement discipline as Engine::save_state/restore_state.
class SwapManager {
 public:
  using SessionKey = std::int64_t;

  /// Sentinel returned by victim_if() when no resident session qualifies.
  static constexpr SessionKey kNone = -1;

  /// Starts tracking a resident session (most-recently-used position).
  /// The key must not already be tracked or swapped.
  void admit(SessionKey key);

  /// Refreshes a resident session's recency (it just made progress or
  /// received a push). No-op for keys that are not tracked.
  void touch(SessionKey key);

  /// Stops tracking a session entirely (close()): drops residency and any
  /// stored image.
  void erase(SessionKey key);

  /// True iff at least one resident session could be evicted.
  bool has_victim() const noexcept { return !lru_.empty(); }

  /// The least-recently-active resident session. Requires has_victim().
  SessionKey victim() const;

  /// The least-recently-active resident session satisfying `eligible`, or
  /// kNone. Lets the serving layer restrict eviction to idle sessions.
  SessionKey victim_if(const std::function<bool(SessionKey)>& eligible) const;

  /// Moves a resident session to the swap tier, storing its image.
  void swap_out(SessionKey key, SwapImage image);

  /// Retrieves and removes a stored image, returning the session to
  /// residency at the most-recently-used position. Throws ccs::Error for a
  /// key that is not swapped.
  SwapImage swap_in(SessionKey key);

  bool swapped(SessionKey key) const {
    return images_.find(key) != images_.end();
  }
  bool resident(SessionKey key) const {
    return position_.find(key) != position_.end();
  }

  std::int64_t resident_count() const noexcept {
    return static_cast<std::int64_t>(lru_.size());
  }
  std::int64_t swapped_count() const noexcept {
    return static_cast<std::int64_t>(images_.size());
  }

  /// Bytes currently held in the image store, and the lifetime peak -- the
  /// footprint of "cold" sessions, reported so benches can show it is
  /// small relative to the resident tier it displaced.
  std::int64_t stored_bytes() const noexcept { return stored_bytes_; }
  std::int64_t peak_stored_bytes() const noexcept { return peak_stored_bytes_; }

  std::int64_t swap_outs() const noexcept { return swap_outs_; }
  std::int64_t swap_ins() const noexcept { return swap_ins_; }

 private:
  std::list<SessionKey> lru_;  ///< Front = least recently active.
  std::unordered_map<SessionKey, std::list<SessionKey>::iterator> position_;
  std::unordered_map<SessionKey, SwapImage> images_;
  std::int64_t stored_bytes_ = 0;
  std::int64_t peak_stored_bytes_ = 0;
  std::int64_t swap_outs_ = 0;
  std::int64_t swap_ins_ = 0;
};

}  // namespace ccs::session
