#include "schedule/serialize.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace ccs::schedule {

void write_schedule(const sdf::SdfGraph& g, const Schedule& s, std::ostream& os) {
  os << "schedule " << (s.name.empty() ? "unnamed" : s.name) << '\n';
  os << "inputs " << s.inputs_per_period << '\n';
  os << "outputs " << s.outputs_per_period << '\n';
  os << "buffers";
  for (const auto cap : s.buffer_caps) os << ' ' << cap;
  os << '\n';
  os << "period";
  for (const auto v : s.period) os << ' ' << g.node(v).name;
  os << '\n';
}

std::string to_text(const sdf::SdfGraph& g, const Schedule& s) {
  std::ostringstream os;
  write_schedule(g, s, os);
  return os.str();
}

namespace {

[[noreturn]] void fail(const std::string& msg) { throw ParseError("schedule: " + msg); }

}  // namespace

Schedule read_schedule(const sdf::SdfGraph& g, std::istream& is) {
  Schedule s;
  std::string line;
  bool saw_period = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "schedule") {
      if (!(ls >> s.name)) fail("missing name");
    } else if (kind == "inputs") {
      if (!(ls >> s.inputs_per_period)) fail("bad inputs count");
    } else if (kind == "outputs") {
      if (!(ls >> s.outputs_per_period)) fail("bad outputs count");
    } else if (kind == "buffers") {
      std::int64_t cap = 0;
      while (ls >> cap) s.buffer_caps.push_back(cap);
      if (s.buffer_caps.size() != static_cast<std::size_t>(g.edge_count())) {
        throw Error("schedule has " + std::to_string(s.buffer_caps.size()) +
                    " buffer capacities for a graph with " +
                    std::to_string(g.edge_count()) + " edges");
      }
    } else if (kind == "period") {
      std::string name;
      while (ls >> name) {
        const sdf::NodeId v = g.find_node(name);
        if (v == sdf::kInvalidNode) throw Error("unknown module '" + name + "' in period");
        s.period.push_back(v);
      }
      saw_period = true;
    } else {
      fail("unknown line '" + kind + "'");
    }
  }
  if (!saw_period) fail("missing period line");
  if (s.buffer_caps.empty() && g.edge_count() > 0) fail("missing buffers line");
  return s;
}

Schedule from_text(const sdf::SdfGraph& g, const std::string& text) {
  std::istringstream is(text);
  return read_schedule(g, is);
}

namespace {

void write_int_array(std::ostream& os, const std::vector<std::int64_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << values[i];
  }
  os << ']';
}

}  // namespace

void write_parallel_json(const ParallelResult& r, std::ostream& os) {
  std::ostringstream imbalance;
  imbalance << std::setprecision(15) << r.imbalance();
  os << "{\"workers\": " << r.workers << ", \"makespan\": " << r.makespan
     << ", \"total_misses\": " << r.total_misses
     << ", \"total_firings\": " << r.total_firings << ", \"outputs\": " << r.outputs
     << ", \"imbalance\": " << imbalance.str() << ", \"worker_misses\": ";
  write_int_array(os, r.worker_misses);
  os << ", \"worker_busy\": ";
  write_int_array(os, r.worker_busy);
  os << ", \"worker_batches\": ";
  write_int_array(os, r.worker_batches);
  os << ", \"llc\": {\"accesses\": " << r.llc.accesses << ", \"hits\": " << r.llc.hits
     << ", \"misses\": " << r.llc.misses << ", \"writebacks\": " << r.llc.writebacks
     << "}}";
}

std::string to_json(const ParallelResult& r) {
  std::ostringstream os;
  write_parallel_json(r, os);
  return os.str();
}

}  // namespace ccs::schedule
