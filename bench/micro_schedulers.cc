// Microbenchmark: schedule construction throughput (google-benchmark).
//
// Scheduling happens offline, but period generation is linear in the batch
// size T and can dominate experiment setup; these benches keep it honest.

#include <benchmark/benchmark.h>

#include "partition/pipeline_dp.h"
#include "schedule/dynamic.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "schedule/scaled.h"
#include "workloads/pipelines.h"

namespace {

using namespace ccs;

void BM_NaiveSchedule(benchmark::State& state) {
  const auto g = workloads::uniform_pipeline(static_cast<std::int32_t>(state.range(0)), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule::naive_minimal_buffer_schedule(g));
  }
}
BENCHMARK(BM_NaiveSchedule)->Arg(16)->Arg(64);

void BM_ScaledSchedule(benchmark::State& state) {
  const auto g = workloads::uniform_pipeline(static_cast<std::int32_t>(state.range(0)), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule::scaled_schedule(g, 4096));
  }
}
BENCHMARK(BM_ScaledSchedule)->Arg(16)->Arg(64);

void BM_PartitionedSchedule(benchmark::State& state) {
  const auto g = workloads::uniform_pipeline(24, 256);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * state.range(0));
  schedule::PartitionedOptions opts;
  opts.m = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule::partitioned_schedule(g, dp.partition, opts));
  }
  state.SetLabel("T=" + std::to_string(schedule::compute_batch_t(g, opts)));
}
BENCHMARK(BM_PartitionedSchedule)->Arg(512)->Arg(2048);

void BM_DynamicPipelineSchedule(benchmark::State& state) {
  const auto g = workloads::uniform_pipeline(24, 256);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule::dynamic_pipeline_schedule(g, dp.partition, 512, state.range(0)));
  }
}
BENCHMARK(BM_DynamicPipelineSchedule)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
