// E4 -- memory augmentation sweep (Cor 6 / Cor 9).
//
// The guarantees hold when the partitioned scheduler runs on an O(1)-factor
// larger cache than the M its partition was built for. Sweep the simulation
// cache from 1x to 8x M on a pipeline and a dag. Expected shape: misses
// drop sharply from 1x to ~3-4x (components + working buffers start to
// fit), then flatten -- constant augmentation suffices, more buys little.

#include "bench/common.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  const std::int64_t m = 512;
  const std::int64_t b = 8;
  const std::int64_t outputs = 2048;

  const auto pipe = workloads::uniform_pipeline(24, 256);
  const auto dag = workloads::fm_radio(10);

  core::PlannerOptions opts;
  opts.cache.capacity_words = m;
  opts.cache.block_words = b;
  const auto plan_pipe = core::plan(pipe, opts);
  const auto plan_dag = core::plan(dag, opts);

  Table t("E4: partitioned misses/output vs cache augmentation factor (M=512, B=8)");
  t.set_header({"cache factor", "pipeline 24x256", "FMRadio dag"});
  for (const std::int64_t factor : {1, 2, 3, 4, 6, 8}) {
    const auto r_pipe = bench::run(pipe, plan_pipe.schedule, factor * m, b, outputs);
    const auto r_dag = bench::run(dag, plan_dag.schedule, factor * m, b, outputs);
    t.add_row({Table::num(factor), Table::num(r_pipe.misses_per_output(), 3),
               Table::num(r_dag.misses_per_output(), 3)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
