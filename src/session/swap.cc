#include "session/swap.h"

#include <algorithm>
#include <array>
#include <utility>

#include "latency/histogram.h"
#include "util/contracts.h"
#include "util/error.h"

namespace ccs::session {

namespace {

// Image layout (all integers LEB128 varints; signed fields zigzagged):
//   magic, version,
//   engine: n_channels, heads[n], sizes[n], n_nodes, fired[n],
//           input_credit, in_cursor, out_cursor,
//           source_firings, sink_firings, total_firings,
//           state_misses, channel_misses, io_misses,
//   totals: accesses, hits, misses, writebacks,
//           firings, source_firings, sink_firings,
//           state_misses, channel_misses, io_misses,
//           n_node_misses, node_misses[n],
//   steps,
//   cost, latency histogram: n_buckets, buckets[n], max, sum   (v2).
constexpr std::uint64_t kMagic = 0xCC5;  // "CCS" session image
// v2 appended the modeled cost and latency histogram after steps so a
// swap-out -> rehydrate round trip preserves tail-percentile state exactly.
constexpr std::uint64_t kVersion = 2;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_varint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_uvarint(out, zigzag(v));
}

/// Sequential varint reader over an image's bytes; throws on truncation.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(&bytes) {}

  std::uint64_t get_uvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= bytes_->size()) {
        throw Error("corrupt swap image: truncated varint");
      }
      const std::uint8_t b = (*bytes_)[pos_++];
      // shift == 63 may only carry the top bit; shift >= 64 means an 11th
      // byte, which no 64-bit value produces. The >= 64 arm also stops a
      // zero-payload continuation byte (0x80) at shift 63 from reaching an
      // undefined shift-by-70 (found by UBSan's bit-flip sweep).
      if (shift >= 64 || (shift == 63 && (b & 0x7E) != 0)) {
        throw Error("corrupt swap image: varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t get_varint() { return unzigzag(get_uvarint()); }

  bool exhausted() const noexcept { return pos_ == bytes_->size(); }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

void put_signed_vector(std::vector<std::uint8_t>& out,
                       const std::vector<std::int64_t>& v) {
  put_uvarint(out, v.size());
  for (const std::int64_t x : v) put_varint(out, x);
}

std::vector<std::int64_t> get_signed_vector(Reader& r) {
  const std::uint64_t n = r.get_uvarint();
  // A plausibility cap: a graph with more than 2^32 nodes/edges would have
  // exhausted memory long before an image was packed.
  if (n > (std::uint64_t{1} << 32)) {
    throw Error("corrupt swap image: implausible vector length");
  }
  std::vector<std::int64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.get_varint());
  return v;
}

}  // namespace

SwapImage SwapImage::pack(const SessionSnapshot& snapshot) {
  const runtime::EngineState& e = snapshot.engine;
  CCS_EXPECTS(e.channel_heads.size() == e.channel_sizes.size(),
              "engine state has mismatched channel vectors");
  SwapImage image;
  std::vector<std::uint8_t>& out = image.bytes_;
  put_uvarint(out, kMagic);
  put_uvarint(out, kVersion);

  put_uvarint(out, e.channel_heads.size());
  for (const std::int64_t h : e.channel_heads) put_varint(out, h);
  for (const std::int64_t s : e.channel_sizes) put_varint(out, s);
  put_signed_vector(out, e.fired);
  put_varint(out, e.input_credit);
  put_varint(out, e.external_in_cursor);
  put_varint(out, e.external_out_cursor);
  put_varint(out, e.source_firings);
  put_varint(out, e.sink_firings);
  put_varint(out, e.total_firings);
  put_varint(out, e.state_misses);
  put_varint(out, e.channel_misses);
  put_varint(out, e.io_misses);

  const runtime::RunResult& t = snapshot.totals;
  put_varint(out, t.cache.accesses);
  put_varint(out, t.cache.hits);
  put_varint(out, t.cache.misses);
  put_varint(out, t.cache.writebacks);
  put_varint(out, t.firings);
  put_varint(out, t.source_firings);
  put_varint(out, t.sink_firings);
  put_varint(out, t.state_misses);
  put_varint(out, t.channel_misses);
  put_varint(out, t.io_misses);
  put_signed_vector(out, t.node_misses);

  put_varint(out, snapshot.steps);

  put_varint(out, t.cost);
  const latency::Histogram& h = t.latency;
  std::vector<std::int64_t> buckets(h.buckets().begin(), h.buckets().end());
  put_signed_vector(out, buckets);
  put_varint(out, h.max());
  put_varint(out, h.sum());
  return image;
}

SessionSnapshot SwapImage::unpack() const {
  Reader r(bytes_);
  if (r.get_uvarint() != kMagic) throw Error("corrupt swap image: bad magic");
  const std::uint64_t version = r.get_uvarint();
  if (version != kVersion) {
    throw Error("unsupported swap image version " + std::to_string(version));
  }

  SessionSnapshot snapshot;
  runtime::EngineState& e = snapshot.engine;
  const std::uint64_t channels = r.get_uvarint();
  if (channels > (std::uint64_t{1} << 32)) {
    throw Error("corrupt swap image: implausible channel count");
  }
  e.channel_heads.reserve(static_cast<std::size_t>(channels));
  for (std::uint64_t i = 0; i < channels; ++i) e.channel_heads.push_back(r.get_varint());
  e.channel_sizes.reserve(static_cast<std::size_t>(channels));
  for (std::uint64_t i = 0; i < channels; ++i) e.channel_sizes.push_back(r.get_varint());
  e.fired = get_signed_vector(r);
  e.input_credit = r.get_varint();
  e.external_in_cursor = r.get_varint();
  e.external_out_cursor = r.get_varint();
  e.source_firings = r.get_varint();
  e.sink_firings = r.get_varint();
  e.total_firings = r.get_varint();
  e.state_misses = r.get_varint();
  e.channel_misses = r.get_varint();
  e.io_misses = r.get_varint();

  runtime::RunResult& t = snapshot.totals;
  t.cache.accesses = r.get_varint();
  t.cache.hits = r.get_varint();
  t.cache.misses = r.get_varint();
  t.cache.writebacks = r.get_varint();
  t.firings = r.get_varint();
  t.source_firings = r.get_varint();
  t.sink_firings = r.get_varint();
  t.state_misses = r.get_varint();
  t.channel_misses = r.get_varint();
  t.io_misses = r.get_varint();
  t.node_misses = get_signed_vector(r);

  snapshot.steps = r.get_varint();

  t.cost = r.get_varint();
  const std::vector<std::int64_t> bucket_vec = get_signed_vector(r);
  if (bucket_vec.size() != static_cast<std::size_t>(latency::Histogram::kBucketCount)) {
    throw Error("corrupt swap image: bad histogram bucket count");
  }
  std::array<std::int64_t, latency::Histogram::kBucketCount> buckets{};
  std::copy(bucket_vec.begin(), bucket_vec.end(), buckets.begin());
  const std::int64_t max = r.get_varint();
  const std::int64_t sum = r.get_varint();
  // from_state re-validates the derived invariants (non-negative buckets,
  // max in the topmost occupied bucket) and throws ccs::Error otherwise.
  t.latency = latency::Histogram::from_state(buckets, max, sum);

  if (!r.exhausted()) throw Error("corrupt swap image: trailing bytes");
  return snapshot;
}

void SwapManager::admit(SessionKey key) {
  CCS_EXPECTS(position_.find(key) == position_.end(), "session already resident");
  CCS_EXPECTS(images_.find(key) == images_.end(), "session is swapped out");
  lru_.push_back(key);
  position_.emplace(key, std::prev(lru_.end()));
}

void SwapManager::touch(SessionKey key) {
  const auto it = position_.find(key);
  if (it == position_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second);
}

void SwapManager::erase(SessionKey key) {
  const auto it = position_.find(key);
  if (it != position_.end()) {
    lru_.erase(it->second);
    position_.erase(it);
  }
  const auto im = images_.find(key);
  if (im != images_.end()) {
    stored_bytes_ -= im->second.size_bytes();
    images_.erase(im);
  }
}

SwapManager::SessionKey SwapManager::victim() const {
  CCS_EXPECTS(has_victim(), "no resident session to evict");
  return lru_.front();
}

SwapManager::SessionKey SwapManager::victim_if(
    const std::function<bool(SessionKey)>& eligible) const {
  for (const SessionKey key : lru_) {
    if (eligible(key)) return key;
  }
  return kNone;
}

void SwapManager::swap_out(SessionKey key, SwapImage image) {
  const auto it = position_.find(key);
  CCS_EXPECTS(it != position_.end(), "cannot swap out a session that is not resident");
  lru_.erase(it->second);
  position_.erase(it);
  stored_bytes_ += image.size_bytes();
  if (stored_bytes_ > peak_stored_bytes_) peak_stored_bytes_ = stored_bytes_;
  images_.emplace(key, std::move(image));
  ++swap_outs_;
}

SwapImage SwapManager::swap_in(SessionKey key) {
  const auto im = images_.find(key);
  if (im == images_.end()) {
    throw Error("session " + std::to_string(key) + " is not in the swap tier");
  }
  SwapImage image = std::move(im->second);
  stored_bytes_ -= image.size_bytes();
  images_.erase(im);
  lru_.push_back(key);
  position_.emplace(key, std::prev(lru_.end()));
  ++swap_ins_;
  return image;
}

}  // namespace ccs::session
