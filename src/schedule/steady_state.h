// Steady-state (periodic admissible sequential) schedule construction.
//
// One steady-state iteration fires every module v exactly q(v) times
// (repetition vector) and returns all channels to empty [Lee &
// Messerschmitt 1987]. Two classic shapes:
//  * demand-driven -- smallest buffers, maximally interleaved firings;
//  * single-appearance -- each module fires q(v) times consecutively in
//    topological order; simplest code, largest buffers (one iteration's
//    full token traffic per edge).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sdf/graph.h"

namespace ccs::schedule {

/// Firing sequence completing one steady-state iteration within the given
/// capacities. Throws DeadlockError if the capacities cannot support an
/// iteration (use sdf::feasible_buffers to obtain workable ones).
std::vector<sdf::NodeId> demand_driven_iteration(const sdf::SdfGraph& g,
                                                 std::span<const std::int64_t> caps);

/// Single-appearance iteration: topological order, q(v) firings each.
/// `caps_out`, if non-null, receives the per-edge capacities this shape
/// needs (the full per-iteration traffic of each edge).
std::vector<sdf::NodeId> single_appearance_iteration(const sdf::SdfGraph& g,
                                                     std::vector<std::int64_t>* caps_out);

}  // namespace ccs::schedule
