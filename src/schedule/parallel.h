// Parallel asynchronous component scheduling (Section 3's extension and the
// multiprocessor direction of Section 7).
//
// The paper observes that the homogeneous component schedule "readily
// generalizes to the asynchronous or parallel case": any component with M
// tokens on all incoming cross edges and empty outgoing cross edges may
// execute, independently of the others. This module simulates P workers,
// each with a private cache, claiming schedulable components greedily:
//
//  * token state is shared; a component's effects commit when its batch
//    finishes (claim-time checks make concurrent neighbors impossible, so
//    commit order cannot oversubscribe a buffer);
//  * execution time of a batch is its firing count (unit work per firing);
//  * each worker's misses are simulated on its own LRU cache, so component
//    migration between workers pays real reload costs.
//
// The paper's §7 remark -- the optimal uniprocessor schedule trivially
// minimizes total misses, and multiprocessors trade extra (re)loads for
// load balance -- is exactly what experiment E14 measures with this
// simulator: near-flat total misses and near-linear makespan scaling while
// enough independent components exist.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iomodel/cache.h"
#include "partition/partition.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Result of a parallel simulation.
struct ParallelResult {
  std::int32_t workers = 0;                   ///< Worker count simulated.
  std::int64_t makespan = 0;                  ///< Time units until last completion.
  std::int64_t total_misses = 0;              ///< Summed over worker caches.
  std::int64_t total_firings = 0;             ///< Module firings across all workers.
  std::int64_t outputs = 0;                   ///< Sink firings completed.
  std::vector<std::int64_t> worker_misses;    ///< Per worker.
  std::vector<std::int64_t> worker_busy;      ///< Busy time units per worker.
  std::vector<std::int64_t> worker_batches;   ///< Component batches per worker.

  /// Shared-LLC counters when the run executed over a pool with a shared
  /// last level (core::simulate_parallel_on_pool); all-zero otherwise.
  iomodel::CacheStats llc;

  /// Busy-time balance: worst worker / average of busy time (1.0 = perfect
  /// balance). A pool that did no work at all -- no workers, or every
  /// worker idle -- reports 0.0: "no imbalance" is the only meaningful
  /// reading of an idle pool, and it keeps the value finite.
  double imbalance() const;
};

/// Simulates the asynchronous homogeneous schedule on `workers` workers,
/// each with a private fully-associative LRU cache of `cache_words` /
/// `block_words`, until the sink completes at least `min_outputs` firings.
/// Requires a homogeneous graph and a well-ordered partition whose
/// components have state at most `cache_words`.
ParallelResult simulate_parallel_homogeneous(const sdf::SdfGraph& g,
                                             const partition::Partition& p,
                                             std::int64_t m, std::int64_t cache_words,
                                             std::int64_t block_words, std::int32_t workers,
                                             std::int64_t min_outputs);

/// The same simulator against caller-provided per-worker caches (one per
/// worker, all sharing one block size, typically fresh/cold). This is the
/// seam the multicore serving subsystem plugs into: a runtime::WorkerPool's
/// private L1s stand in for the hand-rolled caches above (bit-identical
/// per-worker counters, since a private level's behaviour is independent of
/// any shared level behind it). The caches must outlive the call.
ParallelResult simulate_parallel_homogeneous(const sdf::SdfGraph& g,
                                             const partition::Partition& p, std::int64_t m,
                                             std::span<iomodel::CacheSim* const> worker_caches,
                                             std::int64_t min_outputs);

}  // namespace ccs::schedule
