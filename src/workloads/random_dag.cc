#include "workloads/random_dag.h"

#include <string>
#include <vector>

#include "util/contracts.h"
#include "util/rational.h"

namespace ccs::workloads {

using sdf::NodeId;
using sdf::SdfGraph;

SdfGraph layered_homogeneous_dag(const LayeredSpec& spec, Rng& rng) {
  CCS_EXPECTS(spec.layers >= 1 && spec.width >= 1, "need at least one interior module");
  CCS_EXPECTS(spec.state_lo >= 0 && spec.state_lo <= spec.state_hi, "invalid state range");
  SdfGraph g;
  const NodeId source = g.add_node("src", rng.uniform(spec.state_lo, spec.state_hi));

  // layer_nodes[l] for l in [0, layers+1]: 0 is the source, layers+1 the sink.
  std::vector<std::vector<NodeId>> layer_nodes(static_cast<std::size_t>(spec.layers) + 2);
  layer_nodes[0].push_back(source);
  for (std::int32_t l = 1; l <= spec.layers; ++l) {
    for (std::int32_t w = 0; w < spec.width; ++w) {
      layer_nodes[static_cast<std::size_t>(l)].push_back(
          g.add_node("L" + std::to_string(l) + "_" + std::to_string(w),
                     rng.uniform(spec.state_lo, spec.state_hi)));
    }
  }
  const NodeId sink = g.add_node("sink", rng.uniform(spec.state_lo, spec.state_hi));
  layer_nodes[static_cast<std::size_t>(spec.layers) + 1].push_back(sink);

  // Covering edges: every interior module gets one predecessor in the prior
  // layer; every module of the prior layer missing a successor gets one.
  for (std::size_t l = 1; l < layer_nodes.size(); ++l) {
    const auto& prev = layer_nodes[l - 1];
    const auto& cur = layer_nodes[l];
    for (const NodeId v : cur) g.add_edge(rng.pick(prev), v, 1, 1);
    for (const NodeId u : prev) {
      if (g.out_edges(u).empty()) g.add_edge(u, rng.pick(cur), 1, 1);
    }
    // Extra random edges between consecutive layers (skip exact duplicates).
    for (const NodeId u : prev) {
      for (const NodeId v : cur) {
        if (!rng.bernoulli(spec.edge_prob)) continue;
        bool duplicate = false;
        for (const sdf::EdgeId e : g.out_edges(u)) {
          if (g.edge(e).dst == v) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) g.add_edge(u, v, 1, 1);
      }
    }
  }
  return g;
}

namespace {

/// A recursively built sub-dag with unique entry/exit and known total gain
/// (firings of exit per firing of entry).
struct Fragment {
  NodeId entry;
  NodeId exit;
  Rational gain;
};

class SpBuilder {
 public:
  SpBuilder(SdfGraph& g, const SeriesParallelSpec& spec, Rng& rng)
      : g_(g), spec_(spec), rng_(rng) {}

  Fragment build(std::int32_t budget, std::int32_t depth) {
    if (budget <= 1 || depth > 4) {
      const NodeId v = fresh_node();
      return Fragment{v, v, Rational(1)};
    }
    if (budget >= 4 && rng_.bernoulli(0.4)) return parallel(budget, depth);
    return series(budget, depth);
  }

 private:
  NodeId fresh_node() {
    return g_.add_node("sp" + std::to_string(counter_++),
                       rng_.uniform(spec_.state_lo, spec_.state_hi));
  }

  Fragment series(std::int32_t budget, std::int32_t depth) {
    const std::int32_t left_budget = std::max(1, budget / 2);
    Fragment left = build(left_budget, depth + 1);
    Fragment right = build(budget - left_budget, depth + 1);
    const std::int64_t out = rng_.uniform(1, spec_.max_rate);
    const std::int64_t in = rng_.uniform(1, spec_.max_rate);
    g_.add_edge(left.exit, right.entry, out, in);
    return Fragment{left.entry, right.exit,
                    left.gain * Rational(out, in) * right.gain};
  }

  Fragment parallel(std::int32_t budget, std::int32_t depth) {
    const auto branches =
        static_cast<std::int32_t>(rng_.uniform(2, spec_.max_branches));
    const NodeId split = fresh_node();
    const NodeId join = fresh_node();
    const std::int32_t per_branch = std::max(1, (budget - 2) / branches);
    for (std::int32_t b = 0; b < branches; ++b) {
      Fragment frag = build(per_branch, depth + 1);
      g_.add_edge(split, frag.entry, 1, 1);
      // Normalize the branch to unit gain so the join can consume one token
      // per input channel per firing: append a rate-converter module whose
      // edge rates cancel the branch's accumulated gain.
      NodeId tail = frag.exit;
      if (frag.gain != Rational(1)) {
        const NodeId norm = fresh_node();
        g_.add_edge(tail, norm, frag.gain.den(), frag.gain.num());
        tail = norm;
      }
      g_.add_edge(tail, join, 1, 1);
    }
    return Fragment{split, join, Rational(1)};
  }

  SdfGraph& g_;
  const SeriesParallelSpec& spec_;
  Rng& rng_;
  std::int32_t counter_ = 0;
};

}  // namespace

SdfGraph series_parallel_dag(const SeriesParallelSpec& spec, Rng& rng) {
  CCS_EXPECTS(spec.target_nodes >= 1, "need a positive node budget");
  CCS_EXPECTS(spec.max_branches >= 2, "parallel composition needs >= 2 branches");
  CCS_EXPECTS(spec.max_rate >= 1, "invalid max rate");
  CCS_EXPECTS(spec.state_lo >= 0 && spec.state_lo <= spec.state_hi, "invalid state range");
  SdfGraph g;
  SpBuilder builder(g, spec, rng);
  (void)builder.build(spec.target_nodes, 0);
  return g;
}

}  // namespace ccs::workloads
