#include "session/lifecycle.h"

namespace ccs::session {

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kLive:
      return "live";
    case SessionState::kIdle:
      return "idle";
    case SessionState::kSwapped:
      return "swapped";
    case SessionState::kClosed:
      return "closed";
  }
  return "unknown";
}

}  // namespace ccs::session
