// Sharded worker runtime: N workers over a shared cache hierarchy.
//
// The paper's §7 multiprocessor remark is a statement about cache state: the
// optimal uniprocessor schedule trivially minimizes total misses, and
// multicore execution trades extra (re)loads for load balance. A WorkerPool
// is the memory-system half of that trade made concrete: each worker owns a
// private L1 (iomodel::SharedLlcCache), all workers optionally share one
// last-level cache, and anything executed "on" worker w -- a component batch
// of the parallel simulator, or a core::Stream session placed there by
// core::Cluster -- runs against w's private cache and therefore pays real
// reload misses when it migrates to another worker.
//
// Concurrency contract: a worker's private cache is single-owner (exactly
// one thread may drive worker w at a time); the shared LLC is probed only
// on private-level misses, under either the pool's single mutex
// (llc_shards == 0, the original design) or the owning stripe's lock of an
// address-striped iomodel::ShardedLruCache (llc_shards >= 1), where misses
// on different stripes never contend. Private per-worker counters are
// deterministic for a fixed per-worker access stream regardless of how
// other workers interleave -- and independent of the LLC backend, since the
// shared level never feeds back into L1 replacement; the shared LLC's
// hit/miss split is deterministic only under a serialized (virtual-time)
// driver, while its access total always equals the summed private misses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iomodel/cache.h"
#include "iomodel/hierarchy.h"
#include "iomodel/layout.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ccs::runtime {

/// Pool geometry.
struct WorkerPoolOptions {
  std::int32_t workers = 1;           ///< Cores simulated.
  iomodel::CacheConfig l1{4096, 8};   ///< Per-worker private cache.

  /// Shared last-level cache capacity in words; 0 disables the shared level
  /// (workers then have independent flat caches, the §7/E14 model). Must be
  /// strictly larger than l1 when non-zero.
  std::int64_t llc_words = 0;

  /// LLC lock strategy: 0 keeps the original flat LruCache behind one
  /// pool-wide mutex; >= 1 backs the LLC with an address-striped
  /// ShardedLruCache of that many stripes (power of two), each behind its
  /// own lock. 1 stripe is bit-identical to the single-mutex cache (same
  /// global LRU) while already routing through the sharded code path.
  /// Ignored when llc_words == 0.
  std::int32_t llc_shards = 0;
};

/// N private worker caches over an optional shared LLC.
class WorkerPool {
 public:
  /// Throws MemoryError for a degenerate L1 geometry, ccs::Error for an
  /// invalid worker count or LLC size.
  explicit WorkerPool(WorkerPoolOptions options);

  std::int32_t size() const noexcept { return options_.workers; }
  const WorkerPoolOptions& options() const noexcept { return options_; }

  /// Worker w's private cache (what an engine placed on w executes against).
  iomodel::SharedLlcCache& worker_cache(std::int32_t w);
  const iomodel::SharedLlcCache& worker_cache(std::int32_t w) const;

  /// Worker w's private-level counters (w's own traffic).
  const iomodel::CacheStats& worker_stats(std::int32_t w) const {
    return worker_cache(w).stats();
  }

  bool has_llc() const noexcept { return llc_ != nullptr || sharded_llc_ != nullptr; }

  /// Stripes backing the shared LLC (0 = single-mutex flat backend).
  std::int32_t llc_shards() const noexcept {
    return sharded_llc_ != nullptr ? sharded_llc_->shard_count() : 0;
  }

  /// Shared-LLC counters. Requires has_llc(). Every private-level miss of
  /// every worker is one LLC access, so under a serialized driver
  /// llc_stats().accesses == sum of worker_stats(w).misses. With a sharded
  /// backend the reference is a per-call aggregate snapshot (re-call for
  /// fresh counters); call it from the controlling thread while quiescent.
  const iomodel::CacheStats& llc_stats() const;

  /// Blocks of [region.base, region.end()) resident in worker w's private
  /// cache -- the affinity signal placement policies rank workers by. Probes
  /// block-granularly (cost O(words/B)); mutates nothing.
  std::int64_t resident_blocks(std::int32_t w, const iomodel::Region& region) const;

  /// resident_blocks in words -- the occupancy signal adaptive placement
  /// budgets against l1_capacity_words().
  std::int64_t resident_words(std::int32_t w, const iomodel::Region& region) const;

  /// Per-worker private-cache capacity in words (every worker is identical):
  /// the oversubscription budget adaptive placement charges hot footprints
  /// against.
  std::int64_t l1_capacity_words() const noexcept {
    return options_.l1.capacity_words;
  }

 private:
  WorkerPoolOptions options_;
  /// Single-mutex backend (llc_shards == 0): the pointee -- not the pointer,
  /// which is set once at construction -- is guarded by llc_mutex_.
  std::unique_ptr<iomodel::LruCache> llc_ CCS_PT_GUARDED_BY(llc_mutex_);
  mutable Mutex llc_mutex_;
  std::unique_ptr<iomodel::ShardedLruCache> sharded_llc_;  ///< Striped backend (locks per stripe).
  std::vector<std::unique_ptr<iomodel::SharedLlcCache>> workers_;
};

}  // namespace ccs::runtime
