#include "schedule/dynamic.h"

#include <memory>
#include <string>

#include "schedule/online.h"
#include "schedule/token_sim.h"
#include "util/contracts.h"
#include "util/error.h"

namespace ccs::schedule {

namespace {

/// EngineView over a bare TokenSim plus a driver-held credit counter.
class TokenSimView final : public EngineView {
 public:
  TokenSimView(const TokenSim& sim, const std::int64_t* credit)
      : sim_(&sim), credit_(credit) {}

  std::int64_t tokens(sdf::EdgeId e) const override { return sim_->tokens(e); }
  std::int64_t capacity(sdf::EdgeId e) const override { return sim_->capacity(e); }
  std::int64_t fired(sdf::NodeId v) const override { return sim_->fired(v); }
  std::int64_t input_credit() const override { return *credit_; }

 private:
  const TokenSim* sim_;
  const std::int64_t* credit_;
};

/// Materializes a policy run as one batch period: grant the policy's own
/// input allowance, step until `min_outputs` sink firings, then drain. This
/// is exactly what core::Stream does against a cache-measuring engine, so
/// the batch schedule and the online session execute identical sequences.
Schedule run_policy(const sdf::SdfGraph& g, OnlinePolicy& policy, std::int64_t min_outputs,
                    const std::string& schedule_name, const std::string& label) {
  Schedule out;
  out.name = schedule_name;
  out.buffer_caps = policy.buffer_caps();

  TokenSim sim(g, out.buffer_caps);
  std::int64_t credit = policy.batch_credit(min_outputs);
  const TokenSimView view(sim, &credit);
  const sdf::NodeId source = policy.source();
  const sdf::NodeId sink = policy.sink();

  const auto execute = [&](const std::vector<sdf::NodeId>& firings) {
    for (const sdf::NodeId v : firings) {
      sim.fire(v);
      if (v == source && credit != kUnlimitedCredit) --credit;
    }
    out.period.insert(out.period.end(), firings.begin(), firings.end());
  };

  while (sim.fired(sink) < min_outputs) {
    const StepPlan step = policy.next_step(view);
    if (step.idle()) {
      throw DeadlockError(label + " scheduler made no progress");
    }
    execute(step.firings);
  }
  execute(policy.plan_drain(view));
  if (!sim.drained()) {
    throw DeadlockError(label + " schedule failed to drain");
  }
  out.inputs_per_period = sim.fired(source);
  out.outputs_per_period = sim.fired(sink);
  return out;
}

}  // namespace

Schedule dynamic_pipeline_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                   std::int64_t m, std::int64_t min_outputs) {
  CCS_EXPECTS(m > 0 && min_outputs > 0, "invalid dynamic schedule parameters");
  const auto policy = make_pipeline_half_full_policy(g, p, m);
  return run_policy(g, *policy, min_outputs, "dynamic-pipeline", "dynamic pipeline");
}

Schedule dynamic_homogeneous_schedule(const sdf::SdfGraph& g, const partition::Partition& p,
                                      std::int64_t m, std::int64_t min_outputs) {
  CCS_EXPECTS(m > 0 && min_outputs > 0, "invalid dynamic schedule parameters");
  const auto policy = make_homogeneous_m_batch_policy(g, p, m);
  return run_policy(g, *policy, min_outputs, "dynamic-homog", "dynamic homogeneous");
}

}  // namespace ccs::schedule
