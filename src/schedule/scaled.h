// Execution scaling (Sermulins et al., LCTES'05) baseline.
//
// Start from the single-appearance steady state and replace each module's
// q(v) firings by s*q(v) back-to-back firings, choosing the largest s whose
// buffer growth avoids "catastrophic spills": every module's working set
// (its state plus the buffers on its incident channels) must still fit in
// the cache. Scaling amortizes state loads across s iterations but -- as
// the paper observes in Section 6 -- explores only schedules derived from
// one fixed steady state, so it cannot exploit partition structure and is
// suboptimal on graphs whose state is concentrated in a few hot regions.
#pragma once

#include <cstdint>

#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Builds the scaled schedule for cache size `m` (words). `max_scale` caps
/// the search (the optimum is found by direct maximization; the cap guards
/// against degenerate graphs with near-zero buffer cost).
Schedule scaled_schedule(const sdf::SdfGraph& g, std::int64_t m,
                         std::int64_t max_scale = 1 << 20);

/// The scale factor the schedule above would choose (exposed for tests and
/// the E8 ablation).
std::int64_t choose_scale_factor(const sdf::SdfGraph& g, std::int64_t m,
                                 std::int64_t max_scale = 1 << 20);

}  // namespace ccs::schedule
