#include "core/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace ccs::core {
namespace {

/// The acceptance grid: 2 workloads x 3 cache sizes x 4 partitioners = 24
/// partitioned cells (plus whatever baselines a test adds).
SweepSpec acceptance_spec() {
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline", "FMRadio"};
  spec.caches = {{256, 8}, {512, 8}, {1024, 8}};
  spec.partitioners = {"auto", "dag-greedy", "dag-refined", "agglomerative"};
  spec.target_outputs = 128;  // keep the grid fast; determinism is size-free
  return spec;
}

void expect_cells_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& x = a.cells[i];
    const CellResult& y = b.cells[i];
    // Same coordinate in the same slot: grid order is thread-independent.
    EXPECT_EQ(x.workload, y.workload) << i;
    EXPECT_EQ(x.strategy, y.strategy) << i;
    EXPECT_EQ(x.cache.capacity_words, y.cache.capacity_words) << i;
    EXPECT_EQ(x.t_multiplier, y.t_multiplier) << i;
    // Same outcome and counters, bit for bit. A few named fields first for
    // readable failures, then the exhaustive defaulted operator== so any
    // counter added to RunResult is covered automatically.
    EXPECT_EQ(x.ok, y.ok) << i << " " << x.error << " vs " << y.error;
    EXPECT_EQ(x.error, y.error) << i;
    EXPECT_EQ(x.resolved_strategy, y.resolved_strategy) << i;
    EXPECT_EQ(x.components, y.components) << i;
    EXPECT_EQ(x.batch_t, y.batch_t) << i;
    EXPECT_EQ(x.run.cache.misses, y.run.cache.misses) << i;
    EXPECT_EQ(x.run.sink_firings, y.run.sink_firings) << i;
    EXPECT_TRUE(x.run == y.run) << i;
    EXPECT_EQ(x.server_steps, y.server_steps) << i;
    EXPECT_EQ(x.cluster_makespan, y.cluster_makespan) << i;
    EXPECT_EQ(x.cluster_migrations, y.cluster_migrations) << i;
  }
}

TEST(Experiment, GridEnumerationIsWorkloadMajorAndComplete) {
  auto spec = acceptance_spec();
  spec.baselines = {"naive"};
  const Experiment e(spec);
  // 2 workloads x 3 caches x (4 partitioners x 1 t_mult + 1 baseline).
  EXPECT_EQ(e.cell_count(), 2u * 3u * 5u);
  const auto result = e.run(1);
  ASSERT_EQ(result.cells.size(), e.cell_count());
  EXPECT_EQ(result.cells.front().workload, "uniform-pipeline");
  EXPECT_EQ(result.cells.front().strategy, "auto");
  EXPECT_EQ(result.cells.back().workload, "FMRadio");
  EXPECT_TRUE(result.cells.back().is_baseline);
  EXPECT_EQ(result.cells.back().strategy, "naive");
}

TEST(Experiment, AcceptanceSweepRunsAndEveryCellSucceeds) {
  const Experiment e(acceptance_spec());
  ASSERT_GE(e.cell_count(), 24u);
  const auto result = e.run(2);
  EXPECT_EQ(result.threads, 2);
  EXPECT_EQ(result.failed_cells(), 0u);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.workload << "/" << cell.strategy << ": " << cell.error;
    EXPECT_GT(cell.run.sink_firings, 0);
    EXPECT_GT(cell.components, 0);
    // Counter coherence must survive the pool.
    EXPECT_EQ(cell.run.state_misses + cell.run.channel_misses + cell.run.io_misses,
              cell.run.cache.misses);
  }
}

TEST(Experiment, ParallelSweepIsCounterIdenticalToSerial) {
  auto spec = acceptance_spec();
  spec.baselines = {"naive", "scaled"};
  const Experiment e(spec);
  const auto serial = e.run(1);
  const auto parallel = e.run(2);
  const auto wide = e.run(4);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_EQ(parallel.threads, 2);
  expect_cells_identical(serial, parallel);
  expect_cells_identical(serial, wide);
}

TEST(Experiment, RepetitionsReuseTheEngineAndAgree) {
  // repetitions > 1 re-measures each cell through Engine::rebind_cache on a
  // fresh cache; any divergence fails the cell, so a clean run doubles as a
  // regression test for the reset hook.
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline"};
  spec.caches = {{512, 8}};
  spec.partitioners = {"auto"};
  spec.target_outputs = 128;
  spec.repetitions = 3;
  const auto result = Experiment(spec).run(1);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].ok) << result.cells[0].error;
}

TEST(Experiment, BadCellsAreRecordedNotThrown) {
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline", "NoSuchApp"};
  spec.caches = {{512, 8}};
  spec.partitioners = {"auto", "no-such-partitioner", "pipeline-dp"};
  spec.target_outputs = 64;
  const auto result = Experiment(spec).run(2);
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_EQ(result.failed_cells(), 4u);  // whole bad workload + bad partitioner

  // The unknown-partitioner cell carries the registry's key list.
  const auto& bad_partitioner = result.cells[1];
  EXPECT_EQ(bad_partitioner.strategy, "no-such-partitioner");
  EXPECT_FALSE(bad_partitioner.ok);
  EXPECT_NE(bad_partitioner.error.find("valid partitioner"), std::string::npos)
      << bad_partitioner.error;

  const auto& bad_workload = result.cells[3];
  EXPECT_EQ(bad_workload.workload, "NoSuchApp");
  EXPECT_FALSE(bad_workload.ok);
  EXPECT_NE(bad_workload.error.find("unknown workload"), std::string::npos)
      << bad_workload.error;
}

TEST(Experiment, InapplicableStrategyFailsOnlyItsCells) {
  SweepSpec spec;
  spec.workloads = {"FMRadio"};          // a dag
  spec.caches = {{1024, 8}};
  spec.partitioners = {"pipeline-dp"};   // pipeline-only
  spec.target_outputs = 64;
  const auto result = Experiment(spec).run(1);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[0].error.empty());
}

TEST(Experiment, EmptySpecThrows) {
  EXPECT_THROW(Experiment(SweepSpec{}).run(1), Error);
  SweepSpec no_strategies;
  no_strategies.workloads = {"uniform-pipeline"};
  no_strategies.caches = {{512, 8}};
  EXPECT_THROW(Experiment(no_strategies).run(1), Error);
}

TEST(Experiment, CsvAndJsonEmission) {
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline"};
  spec.caches = {{512, 8}};
  spec.partitioners = {"auto"};
  spec.baselines = {"naive"};
  spec.target_outputs = 64;
  const auto result = Experiment(spec).run(1);

  std::ostringstream csv;
  result.write_csv(csv);
  const std::string csv_text = csv.str();
  // Header + one line per cell.
  std::size_t lines = 0;
  for (const char c : csv_text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + result.cells.size());
  EXPECT_NE(csv_text.find("workload,cache_words"), std::string::npos);
  EXPECT_NE(csv_text.find("uniform-pipeline"), std::string::npos);
  EXPECT_NE(csv_text.find("baseline"), std::string::npos);

  std::ostringstream json;
  result.write_json(json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(json_text.find("\"workload\": \"uniform-pipeline\""), std::string::npos);
  EXPECT_NE(json_text.find("\"misses\": "), std::string::npos);
  EXPECT_EQ(json_text.find("\"error\""), std::string::npos);  // all cells ok
}

/// A small online grid: one pipeline workload, two caches, two arrival
/// shapes, one and two tenants.
SweepSpec online_spec() {
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline"};
  spec.caches = {{512, 8}, {1024, 8}};
  spec.online.arrivals = {"steady-16", "bursty-64"};
  spec.online.tenant_counts = {1, 2};
  spec.online.ticks = 24;
  return spec;
}

TEST(Experiment, OnlineCellsRunAndRecordServingCoordinates) {
  const Experiment e(online_spec());
  // 1 workload x 2 caches x (2 arrivals x 2 tenant counts).
  EXPECT_EQ(e.cell_count(), 1u * 2u * 4u);
  const auto result = e.run(1);
  EXPECT_EQ(result.failed_cells(), 0u);
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.is_online);
    EXPECT_FALSE(cell.arrival.empty());
    EXPECT_GT(cell.tenants, 0);
    EXPECT_EQ(cell.resolved_strategy, "pipeline-half-full");
    EXPECT_EQ(cell.schedule_name, "online:pipeline-half-full");
    EXPECT_GT(cell.run.cache.misses, 0);
    EXPECT_GT(cell.server_steps, 0);
    // Every tenant consumed the whole pattern and drained it through.
    const std::int64_t per_tenant =
        workloads::total_arrivals(workloads::ArrivalRegistry::global().build(cell.arrival),
                                  online_spec().online.ticks);
    EXPECT_EQ(cell.run.source_firings, per_tenant * cell.tenants) << cell.arrival;
    EXPECT_EQ(cell.run.sink_firings, per_tenant * cell.tenants) << cell.arrival;
  }
  // More tenants on the same cache never miss less in aggregate per item.
  const CellResult& solo = result.cells[0];    // steady-16, 1 tenant
  const CellResult& duo = result.cells[1];     // steady-16, 2 tenants
  ASSERT_EQ(solo.arrival, duo.arrival);
  EXPECT_GE(duo.misses_per_input, solo.misses_per_input * 0.99);
}

TEST(Experiment, OnlineCellsAreThreadCountIndependentAndRepeatable) {
  auto spec = online_spec();
  spec.repetitions = 2;  // in-cell repeat-run tripwire
  spec.baselines = {"naive"};  // mix batch and online cells in one grid
  spec.partitioners = {"auto"};
  const Experiment e(spec);
  expect_cells_identical(e.run(1), e.run(3));
}

TEST(Experiment, OnlineCellFailuresAreRecordedNotThrown) {
  auto spec = online_spec();
  spec.workloads = {"FMRadio"};  // multirate dag: no online rule applies
  const auto result = Experiment(spec).run(1);
  ASSERT_EQ(result.failed_cells(), result.cells.size());
  for (const CellResult& cell : result.cells) {
    EXPECT_FALSE(cell.ok);
    EXPECT_NE(cell.error.find("no online rule applies"), std::string::npos);
  }
}

/// A small multicore grid: one pipeline workload, one cache, one arrival
/// shape, two tenants, 1-and-2 workers, two placement policies.
SweepSpec cluster_spec() {
  SweepSpec spec;
  spec.workloads = {"uniform-pipeline"};
  spec.caches = {{1024, 8}};
  spec.cluster.arrivals = {"bursty-64"};
  spec.cluster.tenant_counts = {2};
  spec.cluster.worker_counts = {1, 2};
  spec.cluster.placements = {"round-robin", "affinity"};
  spec.cluster.ticks = 16;
  return spec;
}

TEST(Experiment, ClusterCellsRunAndRecordMulticoreCoordinates) {
  const Experiment e(cluster_spec());
  // 1 workload x 1 cache x (1 arrival x 1 tenant count x 2 workers x 2 placements).
  EXPECT_EQ(e.cell_count(), 4u);
  const auto result = e.run(1);
  EXPECT_EQ(result.failed_cells(), 0u);
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.is_cluster);
    EXPECT_FALSE(cell.placement.empty());
    EXPECT_GT(cell.workers, 0);
    EXPECT_EQ(cell.schedule_name, "cluster:pipeline-half-full");
    EXPECT_GT(cell.run.cache.misses, 0);
    EXPECT_GT(cell.server_steps, 0);
    EXPECT_GT(cell.cluster_makespan, 0);
    // Every tenant consumed the whole pattern and drained it through.
    const std::int64_t per_tenant = workloads::total_arrivals(
        workloads::ArrivalRegistry::global().build(cell.arrival),
        cluster_spec().cluster.ticks);
    EXPECT_EQ(cell.run.sink_firings, per_tenant * cell.tenants) << cell.placement;
  }
  // Same placement, more workers: independent tenants spread out, so the
  // model makespan (max worker busy) can only improve.
  const CellResult& one_worker = result.cells[0];   // 1 worker, round-robin
  const CellResult& two_workers = result.cells[2];  // 2 workers, round-robin
  ASSERT_EQ(one_worker.placement, two_workers.placement);
  EXPECT_LE(two_workers.cluster_makespan, one_worker.cluster_makespan);
}

TEST(Experiment, ClusterCellsAreThreadCountIndependentAndRepeatable) {
  auto spec = cluster_spec();
  spec.repetitions = 2;        // in-cell repeat-run tripwire
  spec.partitioners = {"auto"};  // mix batch and cluster cells in one grid
  const Experiment e(spec);
  expect_cells_identical(e.run(1), e.run(3));
}

TEST(Experiment, ClusterCsvAndJsonCarryWorkerAndPlacementColumns) {
  const auto result = Experiment(cluster_spec()).run(1);
  std::ostringstream csv;
  result.write_csv(csv);
  EXPECT_NE(csv.str().find(",workers,placement,"), std::string::npos);
  EXPECT_NE(csv.str().find(",cluster_makespan,cluster_migrations,"), std::string::npos);
  EXPECT_NE(csv.str().find("cluster"), std::string::npos);
  EXPECT_NE(csv.str().find("affinity"), std::string::npos);
  std::ostringstream json;
  result.write_json(json);
  EXPECT_NE(json.str().find("\"kind\": \"cluster\""), std::string::npos);
  EXPECT_NE(json.str().find("\"placement\": \"affinity\""), std::string::npos);
  EXPECT_NE(json.str().find("\"workers\": 2"), std::string::npos);
  EXPECT_NE(json.str().find("\"cluster_makespan\""), std::string::npos);
}

TEST(Experiment, OnlineCsvAndJsonCarryArrivalAndTenantColumns) {
  const auto result = Experiment(online_spec()).run(1);
  std::ostringstream csv;
  result.write_csv(csv);
  EXPECT_NE(csv.str().find(",arrival,tenants,"), std::string::npos);
  EXPECT_NE(csv.str().find("online"), std::string::npos);
  EXPECT_NE(csv.str().find("bursty-64"), std::string::npos);
  std::ostringstream json;
  result.write_json(json);
  EXPECT_NE(json.str().find("\"kind\": \"online\""), std::string::npos);
  EXPECT_NE(json.str().find("\"arrival\": \"steady-16\""), std::string::npos);
  EXPECT_NE(json.str().find("\"tenants\": 2"), std::string::npos);
}

}  // namespace
}  // namespace ccs::core
