#include "workloads/streamit.h"

#include <vector>

#include "util/contracts.h"

namespace ccs::workloads {

using sdf::NodeId;
using sdf::SdfGraph;

namespace {

/// State sizes (in words) modelling typical filter implementations.
constexpr std::int64_t kTaps64 = 64;     // 64-tap FIR coefficient array
constexpr std::int64_t kTaps128 = 128;   // sharper band-pass filter
constexpr std::int64_t kSmall = 16;      // stateless-ish glue (demod, adders)
constexpr std::int64_t kSbox = 512;      // 8 DES S-boxes, 64 entries each

}  // namespace

SdfGraph fm_radio(std::int32_t bands) {
  CCS_EXPECTS(bands >= 1, "fm_radio needs at least one band");
  SdfGraph g;
  const NodeId src = g.add_node("AtoD", kSmall);
  // Decimating low-pass: consumes 4 samples, produces 1.
  const NodeId lpf = g.add_node("LowPass", kTaps64);
  g.add_edge(src, lpf, 1, 4);
  const NodeId demod = g.add_node("FMDemod", kSmall);
  g.add_edge(lpf, demod, 1, 1);
  // Equalizer: duplicate split, one band-pass + gain stage per band, then an
  // adder join.
  const NodeId split = g.add_node("EqSplit", kSmall);
  g.add_edge(demod, split, 1, 1);
  const NodeId join = g.add_node("EqJoin", kSmall);
  for (std::int32_t b = 0; b < bands; ++b) {
    const NodeId bp = g.add_node("BandPass" + std::to_string(b), kTaps128);
    const NodeId amp = g.add_node("Gain" + std::to_string(b), kSmall);
    g.add_edge(split, bp, 1, 1);  // duplicate: one copy per band per firing
    g.add_edge(bp, amp, 1, 1);
    g.add_edge(amp, join, 1, 1);
  }
  const NodeId sink = g.add_node("Speaker", kSmall);
  g.add_edge(join, sink, 1, 1);
  return g;
}

SdfGraph filter_bank(std::int32_t channels) {
  CCS_EXPECTS(channels >= 1, "filter_bank needs at least one channel");
  SdfGraph g;
  const NodeId src = g.add_node("Source", kSmall);
  const NodeId split = g.add_node("Split", kSmall);
  g.add_edge(src, split, 1, 1);
  const NodeId join = g.add_node("Combine", kSmall);
  const std::int64_t m = channels;
  for (std::int32_t c = 0; c < channels; ++c) {
    const std::string tag = std::to_string(c);
    const NodeId analysis = g.add_node("Analysis" + tag, kTaps128);
    const NodeId down = g.add_node("Down" + tag, kSmall);
    const NodeId up = g.add_node("Up" + tag, kSmall);
    const NodeId synthesis = g.add_node("Synthesis" + tag, kTaps128);
    g.add_edge(split, analysis, 1, 1);   // duplicate split
    g.add_edge(analysis, down, 1, m);    // decimate by M
    g.add_edge(down, up, 1, 1);
    g.add_edge(up, synthesis, m, 1);     // interpolate by M
    g.add_edge(synthesis, join, 1, 1);
  }
  const NodeId sink = g.add_node("Sink", kSmall);
  g.add_edge(join, sink, 1, 1);
  return g;
}

SdfGraph beamformer(std::int32_t channels, std::int32_t beams) {
  CCS_EXPECTS(channels >= 1 && beams >= 1, "beamformer needs channels and beams");
  SdfGraph g;
  const NodeId src = g.add_node("Antenna", kSmall);
  const NodeId split = g.add_node("ChanSplit", kSmall);
  g.add_edge(src, split, 1, 1);
  // Frame collector: one token from each channel, emits a `channels`-wide
  // frame per firing.
  const NodeId collect = g.add_node("FrameJoin", kSmall);
  for (std::int32_t c = 0; c < channels; ++c) {
    const std::string tag = std::to_string(c);
    const NodeId coarse = g.add_node("CoarseFIR" + tag, kTaps64);
    const NodeId fine = g.add_node("FineFIR" + tag, kTaps64);
    g.add_edge(split, coarse, 1, 1);
    g.add_edge(coarse, fine, 1, 1);
    g.add_edge(fine, collect, 1, 1);
  }
  const NodeId beam_split = g.add_node("BeamSplit", kSmall);
  g.add_edge(collect, beam_split, static_cast<std::int64_t>(channels),
             static_cast<std::int64_t>(channels));
  const NodeId beam_join = g.add_node("BeamJoin", kSmall);
  for (std::int32_t b = 0; b < beams; ++b) {
    const std::string tag = std::to_string(b);
    // Beamform consumes a whole frame, produces one beam sample.
    const NodeId bf = g.add_node("Beamform" + tag, kTaps128);
    const NodeId mag = g.add_node("Magnitude" + tag, kSmall);
    const NodeId det = g.add_node("Detect" + tag, kSmall);
    g.add_edge(beam_split, bf, static_cast<std::int64_t>(channels),
               static_cast<std::int64_t>(channels));
    g.add_edge(bf, mag, 1, 1);
    g.add_edge(mag, det, 1, 1);
    g.add_edge(det, beam_join, 1, 1);
  }
  const NodeId sink = g.add_node("Output", kSmall);
  g.add_edge(beam_join, sink, 1, 1);
  return g;
}

namespace {

/// Builds a butterfly network over 2^log_n wires: `stage_pairs(stage)` maps
/// each wire to its partner; consecutive stages are connected wire-by-wire
/// through two-input/two-output compare/combine modules.
SdfGraph butterfly_network(const std::string& prefix, std::int32_t log_n,
                           std::int32_t stages, std::int64_t module_state) {
  const std::int32_t n = 1 << log_n;
  SdfGraph g;
  const NodeId src = g.add_node(prefix + "Src", kSmall);
  const NodeId fan = g.add_node(prefix + "Fan", kSmall);
  g.add_edge(src, fan, 1, 1);
  // wire[w] = (node, which to read next output from). Each stage pairs wires
  // (w, w ^ stride) once per stage using module nodes with 2 in + 2 out.
  std::vector<NodeId> wire(static_cast<std::size_t>(n), fan);
  std::int32_t unit = 0;
  for (std::int32_t s = 0; s < stages; ++s) {
    const std::int32_t stride = 1 << (s % log_n);
    std::vector<NodeId> next = wire;
    for (std::int32_t w = 0; w < n; ++w) {
      const std::int32_t partner = w ^ stride;
      if (partner < w) continue;  // handle each pair once
      const NodeId unit_node =
          g.add_node(prefix + "U" + std::to_string(unit++), module_state);
      g.add_edge(wire[static_cast<std::size_t>(w)], unit_node, 1, 1);
      g.add_edge(wire[static_cast<std::size_t>(partner)], unit_node, 1, 1);
      next[static_cast<std::size_t>(w)] = unit_node;
      next[static_cast<std::size_t>(partner)] = unit_node;
    }
    wire = std::move(next);
  }
  const NodeId merge = g.add_node(prefix + "Merge", kSmall);
  // Collapse duplicate producers: each unit feeds `merge` once per wire it
  // owns, giving merge exactly n incoming tokens per logical vector.
  for (std::int32_t w = 0; w < n; ++w) {
    g.add_edge(wire[static_cast<std::size_t>(w)], merge, 1, 1);
  }
  const NodeId sink = g.add_node(prefix + "Sink", kSmall);
  g.add_edge(merge, sink, 1, 1);
  return g;
}

}  // namespace

SdfGraph bitonic_sort(std::int32_t log_n) {
  CCS_EXPECTS(log_n >= 1 && log_n <= 6, "bitonic_sort supports 2..64 wires");
  const std::int32_t stages = log_n * (log_n + 1) / 2;
  return butterfly_network("Bi", log_n, stages, kSmall);
}

SdfGraph fft(std::int32_t log_n) {
  CCS_EXPECTS(log_n >= 1 && log_n <= 6, "fft supports 2..64 wires");
  return butterfly_network("Fft", log_n, log_n, kTaps64);
}

SdfGraph des(std::int32_t rounds) {
  CCS_EXPECTS(rounds >= 1, "des needs at least one round");
  SdfGraph g;
  NodeId prev = g.add_node("IP", kSmall);  // initial permutation; source
  for (std::int32_t r = 0; r < rounds; ++r) {
    const std::string tag = std::to_string(r);
    const NodeId expand = g.add_node("Expand" + tag, kSmall);
    const NodeId keymix = g.add_node("KeyMix" + tag, kTaps64);
    const NodeId sbox = g.add_node("Sbox" + tag, kSbox);
    const NodeId perm = g.add_node("Perm" + tag, kSmall);
    g.add_edge(prev, expand, 1, 1);
    g.add_edge(expand, keymix, 1, 1);
    g.add_edge(keymix, sbox, 1, 1);
    g.add_edge(sbox, perm, 1, 1);
    prev = perm;
  }
  const NodeId fp = g.add_node("FP", kSmall);  // final permutation; sink
  g.add_edge(prev, fp, 1, 1);
  return g;
}

SdfGraph channel_vocoder(std::int32_t filters) {
  CCS_EXPECTS(filters >= 1, "channel_vocoder needs at least one filter");
  SdfGraph g;
  const NodeId src = g.add_node("Source", kSmall);
  const NodeId split = g.add_node("Dup", kSmall);
  g.add_edge(src, split, 1, 1);
  const NodeId join = g.add_node("Mixer", kSmall);
  // Pitch-detector branch: decimates by 8 (it needs windows, not samples).
  const NodeId pitch = g.add_node("PitchDetect", kTaps128);
  const NodeId pitch_up = g.add_node("PitchUp", kSmall);
  g.add_edge(split, pitch, 1, 8);
  g.add_edge(pitch, pitch_up, 8, 1);
  g.add_edge(pitch_up, join, 1, 1);
  for (std::int32_t f = 0; f < filters; ++f) {
    const std::string tag = std::to_string(f);
    const NodeId bp = g.add_node("VocBand" + tag, kTaps64);
    const NodeId mag = g.add_node("VocMag" + tag, kSmall);
    g.add_edge(split, bp, 1, 1);
    g.add_edge(bp, mag, 1, 1);
    g.add_edge(mag, join, 1, 1);
  }
  const NodeId sink = g.add_node("Synth", kTaps64);
  g.add_edge(join, sink, 1, 1);
  return g;
}

SdfGraph matrix_mult(std::int32_t block) {
  CCS_EXPECTS(block >= 2 && block <= 64, "matrix_mult supports blocks of 2..64");
  const std::int64_t tile = static_cast<std::int64_t>(block) * block;
  SdfGraph g;
  const NodeId src = g.add_node("TileSource", kSmall);
  const NodeId trans = g.add_node("Transpose", tile);
  const NodeId mult = g.add_node("Multiply", 2 * tile);
  const NodeId acc = g.add_node("Accumulate", tile);
  const NodeId sink = g.add_node("TileSink", kSmall);
  g.add_edge(src, trans, tile, tile);
  g.add_edge(trans, mult, tile, 2 * tile);  // multiply consumes two tiles
  g.add_edge(mult, acc, tile, tile);
  g.add_edge(acc, sink, tile, tile);
  return g;
}

sdf::SdfGraph vocoder(std::int32_t bins) {
  CCS_EXPECTS(bins >= 1, "vocoder needs at least one spectral bin");
  SdfGraph g;
  const NodeId src = g.add_node("Samples", kSmall);
  // Analysis window: consume a hop of 16 samples, emit one frame of `bins`
  // complex values (2 words each).
  const std::int64_t frame = 2 * static_cast<std::int64_t>(bins);
  const NodeId window = g.add_node("AnalysisWin", kTaps128);
  g.add_edge(src, window, 1, 16);
  const NodeId split = g.add_node("BinSplit", kSmall);
  g.add_edge(window, split, frame, frame);
  const NodeId join = g.add_node("BinJoin", kSmall);
  for (std::int32_t bin = 0; bin < bins; ++bin) {
    const std::string tag = std::to_string(bin);
    const NodeId mag = g.add_node("Mag" + tag, kSmall);
    const NodeId phase = g.add_node("Phase" + tag, kTaps64);
    g.add_edge(split, mag, 2, 2);    // one complex value per frame per bin
    g.add_edge(mag, phase, 2, 2);
    g.add_edge(phase, join, 2, 2);
  }
  const NodeId synth = g.add_node("OverlapAdd", kTaps128);
  g.add_edge(join, synth, frame, frame);
  const NodeId sink = g.add_node("Audio", kSmall);
  g.add_edge(synth, sink, 16, 16);  // back to time-domain hops
  return g;
}

sdf::SdfGraph tde(std::int32_t fft_size) {
  CCS_EXPECTS(fft_size >= 4, "tde needs a block size of at least 4");
  const std::int64_t n = fft_size;
  SdfGraph g;
  const NodeId src = g.add_node("PulseSource", kSmall);
  const NodeId pack = g.add_node("Pack", kSmall);
  g.add_edge(src, pack, 1, n);  // gather one block per firing
  const NodeId fft_fwd = g.add_node("FFTfwd", 2 * n);   // twiddle tables
  g.add_edge(pack, fft_fwd, n, n);
  const NodeId equalize = g.add_node("Equalize", 2 * n);  // inverse response
  g.add_edge(fft_fwd, equalize, n, n);
  const NodeId fft_inv = g.add_node("FFTinv", 2 * n);
  g.add_edge(equalize, fft_inv, n, n);
  const NodeId unpack = g.add_node("Unpack", kSmall);
  g.add_edge(fft_inv, unpack, n, n);
  const NodeId sink = g.add_node("PulseSink", kSmall);
  g.add_edge(unpack, sink, n, 1);  // re-serialize... one sample per firing
  return g;
}

sdf::SdfGraph serpent(std::int32_t rounds) {
  CCS_EXPECTS(rounds >= 1, "serpent needs at least one round");
  SdfGraph g;
  NodeId prev = g.add_node("InitPerm", kSmall);
  for (std::int32_t r = 0; r < rounds; ++r) {
    const std::string tag = std::to_string(r);
    const NodeId keyxor = g.add_node("KeyXor" + tag, 32);   // round key
    const NodeId sbox = g.add_node("SerpSbox" + tag, 128);  // 4-bit S-box bank
    const NodeId lt = g.add_node("Linear" + tag, kSmall);
    g.add_edge(prev, keyxor, 1, 1);
    g.add_edge(keyxor, sbox, 1, 1);
    g.add_edge(sbox, lt, 1, 1);
    prev = lt;
  }
  const NodeId fp = g.add_node("FinalPerm", kSmall);
  g.add_edge(prev, fp, 1, 1);
  return g;
}

sdf::SdfGraph radar(std::int32_t channels, std::int32_t beams) {
  CCS_EXPECTS(channels >= 1 && beams >= 1, "radar needs channels and beams");
  SdfGraph g;
  const NodeId src = g.add_node("Array", kSmall);
  const NodeId split = g.add_node("ChanSplit", kSmall);
  g.add_edge(src, split, 1, 1);
  const NodeId collect = g.add_node("Steer", kTaps128);  // steering matrix
  for (std::int32_t c = 0; c < channels; ++c) {
    const std::string tag = std::to_string(c);
    // Deep per-channel chain: decimating input FIR then three more FIRs.
    const NodeId fir1 = g.add_node("InFIR" + tag, kTaps64);
    const NodeId fir2 = g.add_node("MFIR1_" + tag, kTaps64);
    const NodeId fir3 = g.add_node("MFIR2_" + tag, kTaps64);
    const NodeId fir4 = g.add_node("OutFIR" + tag, kTaps64);
    g.add_edge(split, fir1, 1, 2);  // 2:1 decimation per channel
    g.add_edge(fir1, fir2, 1, 1);
    g.add_edge(fir2, fir3, 1, 1);
    g.add_edge(fir3, fir4, 1, 1);
    g.add_edge(fir4, collect, 1, 1);
  }
  const NodeId beam_split = g.add_node("BeamSplit", kSmall);
  g.add_edge(collect, beam_split, static_cast<std::int64_t>(channels),
             static_cast<std::int64_t>(channels));
  const NodeId join = g.add_node("Detect", kSmall);
  for (std::int32_t b = 0; b < beams; ++b) {
    const std::string tag = std::to_string(b);
    const NodeId form = g.add_node("Form" + tag, kTaps128);
    const NodeId compress = g.add_node("PulseComp" + tag, kTaps128);
    const NodeId cfar = g.add_node("CFAR" + tag, kTaps64);
    g.add_edge(beam_split, form, static_cast<std::int64_t>(channels),
               static_cast<std::int64_t>(channels));
    g.add_edge(form, compress, 1, 1);
    g.add_edge(compress, cfar, 1, 1);
    g.add_edge(cfar, join, 1, 1);
  }
  const NodeId sink = g.add_node("Tracks", kSmall);
  g.add_edge(join, sink, 1, 1);
  return g;
}

std::vector<NamedGraph> streamit_suite() {
  std::vector<NamedGraph> suite;
  suite.push_back({"FMRadio", fm_radio()});
  suite.push_back({"FilterBank", filter_bank()});
  suite.push_back({"Beamformer", beamformer()});
  suite.push_back({"BitonicSort", bitonic_sort()});
  suite.push_back({"FFT", fft()});
  suite.push_back({"DES", des()});
  suite.push_back({"ChannelVocoder", channel_vocoder()});
  suite.push_back({"MatrixMult", matrix_mult()});
  suite.push_back({"Vocoder", vocoder()});
  suite.push_back({"TDE", tde()});
  suite.push_back({"Serpent", serpent()});
  suite.push_back({"Radar", radar()});
  return suite;
}

}  // namespace ccs::workloads
