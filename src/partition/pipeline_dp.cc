#include "partition/pipeline_dp.h"

#include <limits>
#include <optional>
#include <vector>

#include "sdf/gain.h"
#include "sdf/topology.h"
#include "util/error.h"

namespace ccs::partition {

PipelineDpResult pipeline_optimal_partition(const sdf::SdfGraph& g,
                                            std::int64_t state_bound) {
  CCS_EXPECTS(state_bound > 0, "state bound must be positive");
  const auto chain = sdf::pipeline_order(g);
  if (g.max_state() > state_bound) {
    throw Error("a module exceeds the state bound; no bounded partition exists");
  }
  const sdf::GainMap gains(g);
  const auto n = static_cast<std::int32_t>(chain.size());

  std::vector<std::int64_t> prefix_state(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t i = 0; i < n; ++i) {
    prefix_state[static_cast<std::size_t>(i) + 1] =
        prefix_state[static_cast<std::size_t>(i)] +
        g.node(chain[static_cast<std::size_t>(i)]).state;
  }
  // gain of the chain edge entering position i (from i-1), i in [1, n).
  std::vector<Rational> cut_gain(static_cast<std::size_t>(n), Rational(0));
  for (std::int32_t i = 1; i < n; ++i) {
    const sdf::EdgeId e = g.out_edges(chain[static_cast<std::size_t>(i) - 1]).front();
    cut_gain[static_cast<std::size_t>(i)] = gains.edge_gain(e);
  }

  // dp[i] = min bandwidth of partitioning chain[0..i), cutting before i.
  std::vector<std::optional<Rational>> dp(static_cast<std::size_t>(n) + 1);
  std::vector<std::int32_t> parent(static_cast<std::size_t>(n) + 1, -1);
  dp[0] = Rational(0);
  for (std::int32_t j = 1; j <= n; ++j) {
    for (std::int32_t i = j - 1; i >= 0; --i) {
      const std::int64_t seg_state =
          prefix_state[static_cast<std::size_t>(j)] - prefix_state[static_cast<std::size_t>(i)];
      if (seg_state > state_bound) break;  // growing i downward only adds state
      if (!dp[static_cast<std::size_t>(i)].has_value()) continue;
      const Rational cost =
          *dp[static_cast<std::size_t>(i)] +
          (i > 0 ? cut_gain[static_cast<std::size_t>(i)] : Rational(0));
      if (!dp[static_cast<std::size_t>(j)].has_value() ||
          cost < *dp[static_cast<std::size_t>(j)]) {
        dp[static_cast<std::size_t>(j)] = cost;
        parent[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  CCS_CHECK(dp[static_cast<std::size_t>(n)].has_value(),
            "modules fit the bound individually, so a partition must exist");

  // Reconstruct segment boundaries.
  std::vector<std::int32_t> cuts;  // positions where segments start
  for (std::int32_t j = n; j > 0; j = parent[static_cast<std::size_t>(j)]) {
    cuts.push_back(parent[static_cast<std::size_t>(j)]);
  }
  std::vector<std::vector<sdf::NodeId>> comps;
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
    const std::int32_t start = *it;
    const std::int32_t end =
        (it + 1 != cuts.rend()) ? *(it + 1) : n;  // next segment start or n
    std::vector<sdf::NodeId> comp;
    for (std::int32_t i = start; i < end; ++i) {
      comp.push_back(chain[static_cast<std::size_t>(i)]);
    }
    comps.push_back(std::move(comp));
  }

  PipelineDpResult result;
  result.partition = Partition::from_components(g, comps);
  result.bandwidth = *dp[static_cast<std::size_t>(n)];
  return result;
}

Rational pipeline_min_bandwidth(const sdf::SdfGraph& g, std::int64_t state_bound) {
  return pipeline_optimal_partition(g, state_bound).bandwidth;
}

}  // namespace ccs::partition
