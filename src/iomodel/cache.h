// Cache simulators for the I/O model.
//
// CacheSim is the interface the streaming runtime drives; implementations:
//  * LruCache          -- fully associative LRU (the paper's analysis model;
//                         an ideal cache in the sense of Frigo et al.)
//  * SetAssociativeCache -- k-way set-associative LRU, for checking that the
//                         paper's conclusions survive on realistic geometry.
//
// All implementations count *block transfers*: an access to an uncached
// block is one miss; evicting a dirty block is one writeback.
//
// Hot path: the runtime touches memory in contiguous spans (channel ring
// segments, module state regions), so CacheSim exposes a block-granular bulk
// API -- access_blocks() and the word-range wrapper access_span() -- that
// costs one simulated access per block with a single virtual dispatch per
// span. Implementations override do_access_blocks() to run the whole span
// through their non-virtual per-block fast path; the default falls back to
// one access() per block. Bulk and per-access paths produce bit-identical
// CacheStats and replacement state (tests/iomodel/bulk_access_test.cc checks
// this differentially).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "iomodel/types.h"

namespace ccs::iomodel {

/// Abstract word-addressed cache.
class CacheSim {
 public:
  virtual ~CacheSim() = default;

  /// Block size shared by every level/way of this cache, in words.
  std::int64_t block_words() const noexcept { return block_words_; }

  /// Touches one word; loads the containing block on a miss.
  virtual void access(Addr addr, AccessMode mode) = 0;

  /// Touches `count` consecutive blocks starting at `first`: one simulated
  /// access per block, in ascending order. Equivalent to (but much cheaper
  /// than) calling access(b * B, mode) for each block b. Returns the
  /// accumulated modeled cost of exactly this call under the attached
  /// AccessCosts (0 under the all-zero default); because pricing is linear
  /// in the counters, per-call costs sum to the price of the whole window's
  /// stats() delta, exactly.
  std::int64_t access_blocks(BlockId first, std::int64_t count, AccessMode mode);

  /// Word-range wrapper around access_blocks(): one simulated access per
  /// block overlapping [addr, addr + words). This is how the runtime touches
  /// a contiguous span -- identical misses and recency order to touching
  /// every word, at O(words/B) simulator work. Returns the call's modeled
  /// cost, like access_blocks().
  std::int64_t access_span(Addr addr, std::int64_t words, AccessMode mode);

  /// Attaches per-counter cycle costs (latency::CostModel::access_costs());
  /// subsequent bulk calls return their priced delta. The default all-zero
  /// costs price every call at 0 and skip the delta bookkeeping entirely.
  void set_access_costs(const AccessCosts& costs) noexcept { costs_ = costs; }
  const AccessCosts& access_costs() const noexcept { return costs_; }

  /// Evicts everything (dirty blocks count as writebacks). Statistics are
  /// preserved; only contents are dropped.
  virtual void flush() = 0;

  /// True if the containing block is resident.
  virtual bool contains(Addr addr) const = 0;

  /// Cumulative transfer counters. The returned reference must stay valid
  /// for the cache's lifetime and track subsequent accesses live (callers
  /// such as the runtime engine hold it across accesses and re-read the
  /// counters for per-phase deltas) — return a reference to the internal
  /// counters, not to a lazily assembled snapshot.
  virtual const CacheStats& stats() const = 0;

  /// Geometry this cache was built with.
  virtual const CacheConfig& config() const = 0;

  /// Convenience: touch `count` consecutive words starting at addr (one
  /// simulated access per *word*, unlike the block-granular span API).
  void access_range(Addr addr, std::int64_t count, AccessMode mode);

 protected:
  /// `block_words` must match config().block_words; the base class caches it
  /// (plus its log2 when it is a power of two) so the span-to-block
  /// arithmetic on the hot path needs no virtual dispatch and no division.
  explicit CacheSim(std::int64_t block_words);

  /// Block containing a (non-negative) word address.
  BlockId block_of(Addr addr) const {
    return block_shift_ >= 0 ? addr >> block_shift_ : addr / block_words_;
  }

  /// Bulk implementation hook; called with a validated, non-empty range.
  /// The default loops access() once per block.
  virtual void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode);

 private:
  std::int64_t block_words_;
  std::int32_t block_shift_;  // log2(block_words), or -1 if not a power of two
  AccessCosts costs_;         // all-zero unless a cost model is attached
};

/// Fully associative LRU with write-back/write-allocate.
///
/// Replacement state is an intrusive doubly-linked list threaded through a
/// flat node slab, indexed by an open-addressing (linear probing, backward-
/// shift deletion) hash table. The table is sized for the full capacity at
/// construction for ordinary geometries, so the steady state performs zero
/// heap allocations; absurdly large capacities start small and double
/// geometrically, which is still allocation-free once the working set
/// stabilizes.
class LruCache final : public CacheSim {
 public:
  explicit LruCache(const CacheConfig& config);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;
  const CacheStats& stats() const override { return stats_; }
  const CacheConfig& config() const override { return config_; }

  /// Touches one whole block (one simulated access); returns true on a hit.
  /// Non-virtual hot path used by the bulk API and HierarchyCache.
  bool access_block(BlockId block, AccessMode mode) {
    CCS_EXPECTS(block >= 0, "negative block id");
    ++stats_.accesses;
    const bool hit = touch_block(block, mode == AccessMode::kWrite);
    hit ? ++stats_.hits : ++stats_.misses;
    return hit;
  }

  /// Blocks currently resident (for tests).
  std::int64_t resident_blocks() const { return size_; }

  /// Heavy cross-consistency walk of the three replacement-state planes:
  /// the recency list visits exactly size_ nodes with consistent back links
  /// and closes on the sentinel, every resident block is findable through
  /// the open-addressing table, and the table holds exactly size_ live
  /// entries. O(capacity + table). Throws ContractViolation on the first
  /// inconsistency. Audit builds (-DCCS_AUDIT=ON) run it automatically at
  /// bulk-access and flush boundaries; tests may call it in any build.
  void audit_invariants() const;

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override;

 private:
  static constexpr std::int32_t kNil = -1;

  /// One block's replacement state. slab_[0] is a sentinel that closes the
  /// recency list into a circle (sentinel.next = MRU, sentinel.prev = LRU),
  /// so relinking needs no nil/head/tail branches. Live nodes are exactly
  /// slab_[1 .. size_].
  struct Node {
    BlockId block;
    std::int32_t prev;
    std::int32_t next;
    bool dirty;
  };

  std::size_t home_slot(BlockId block) const {
    // Fibonacci hashing: multiply spreads nearby block ids, the top bits
    // index the power-of-two table.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(block) * 0x9e3779b97f4a7c15ULL) >> table_shift_);
  }

  /// Hit/miss/eviction core; updates everything except the accesses/hits/
  /// misses counters (callers batch those so span loops are not serialized
  /// on read-modify-write chains). Returns true on a hit.
  bool touch_block(BlockId block, bool write);
  void move_to_front(std::int32_t idx);
  std::size_t find_slot(BlockId block) const;
  void erase_slot(std::size_t slot);
  void grow_table();

  CacheConfig config_;
  std::int64_t capacity_blocks_;
  CacheStats stats_;
  std::vector<Node> slab_;
  std::vector<std::int32_t> table_;  // node index or kNil
  std::size_t table_mask_ = 0;
  std::int32_t table_shift_ = 64;    // 64 - log2(table size)
  std::int64_t size_ = 0;

  /// Bulk-loop execution hint: whether the last probe group was all
  /// home-slot hits, i.e. whether attempting the batched group probe is
  /// likely to pay off. Pure strategy state -- it never changes counters or
  /// replacement order, only which (bit-identical) loop body runs -- kept
  /// across calls so a streaming all-miss phase stops paying for doomed
  /// batch probes after its first group.
  bool batch_hint_ = true;

  /// Audit-mode sampling counter: a full audit_invariants() walk per bulk
  /// call would turn O(n) runs into O(n^2), so audit builds walk every
  /// 64th bulk boundary. Unused (but harmless) outside audit builds.
  [[maybe_unused]] std::int64_t audit_tick_ = 0;
};

/// k-way set-associative LRU. `ways == 1` gives a direct-mapped cache.
///
/// Line state is stored structure-of-arrays, row-major by set: a tag plane
/// (kEmptyTag = -1 marks an empty way; block ids are non-negative, so empty
/// ways never match without a separate valid-bit check) and a meta plane
/// packing each way's recency stamp and dirty bit into one word. The bulk
/// path probes simd::kProbeBatch consecutive sets' tag rows -- one
/// contiguous, dependence-free compare sweep -- per group; the single-access
/// path keeps the classic one-pass early-exit scan, which wins when the
/// simulator's own memory traffic (not the compare loop) dominates.
class SetAssociativeCache final : public CacheSim {
 public:
  /// Requires capacity_blocks % ways == 0 and a power-of-two set count (so
  /// the index function is a mask, as in real hardware).
  SetAssociativeCache(const CacheConfig& config, std::int32_t ways);

  void access(Addr addr, AccessMode mode) override;
  void flush() override;
  bool contains(Addr addr) const override;
  const CacheStats& stats() const override { return stats_; }
  const CacheConfig& config() const override { return config_; }

  std::int32_t ways() const noexcept { return ways_; }
  std::int64_t sets() const noexcept { return num_sets_; }

  /// Heavy walk of the tag/meta planes: every resident tag indexes its own
  /// set, no set holds a duplicate tag, and no recency stamp is newer than
  /// the current tick. Throws ContractViolation on the first inconsistency.
  /// Audit builds run it at bulk-access and flush boundaries.
  void audit_invariants() const;

 protected:
  void do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) override;

 private:
  static constexpr BlockId kEmptyTag = -1;

  std::size_t set_index(BlockId block) const {
    return static_cast<std::size_t>(block & (num_sets_ - 1));
  }

  /// Hit/miss/eviction core; returns true on a hit. Callers batch the
  /// accesses/hits/misses counters.
  bool touch_block(BlockId block, bool write);

  /// Miss handling for a probed set row: victim choice, writeback count,
  /// fill. `base` indexes the row, tick_ has already been advanced.
  void fill_way(std::size_t base, BlockId block, bool write);

  CacheConfig config_;
  std::int32_t ways_;
  std::int64_t num_sets_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  // Structure-of-arrays line state, num_sets_ * ways_ entries row-major by
  // set: tags_[base + w] pairs with meta_[base + w]. Meta packs the recency
  // stamp above the dirty bit -- (tick << 1) | dirty -- so LRU victim
  // selection is one integer compare (stamps are unique, the stamp field
  // dominates) and a line's whole state is two planes, not three.
  std::vector<BlockId> tags_;           // kEmptyTag = way is empty
  std::vector<std::uint64_t> meta_;     // (last-use tick << 1) | dirty

  /// Audit-mode sampling counter (see LruCache::audit_tick_).
  [[maybe_unused]] std::int64_t audit_tick_ = 0;
};

/// Factory helpers.
std::unique_ptr<CacheSim> make_lru(std::int64_t capacity_words, std::int64_t block_words);
std::unique_ptr<CacheSim> make_set_associative(std::int64_t capacity_words,
                                               std::int64_t block_words, std::int32_t ways);

}  // namespace ccs::iomodel
