#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace ccs {
namespace {

TEST(OnlineStats, EmptyIsZeroed) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(GeometricMean, KnownValues) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), ContractViolation);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

}  // namespace
}  // namespace ccs
