#include "sdf/serialize.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(Serialize, RoundTripPreservesStructure) {
  const auto original = ccs::workloads::fm_radio(4);
  const auto parsed = from_text(to_text(original));
  ASSERT_EQ(parsed.node_count(), original.node_count());
  ASSERT_EQ(parsed.edge_count(), original.edge_count());
  for (NodeId v = 0; v < original.node_count(); ++v) {
    EXPECT_EQ(parsed.node(v).name, original.node(v).name);
    EXPECT_EQ(parsed.node(v).state, original.node(v).state);
  }
  for (EdgeId e = 0; e < original.edge_count(); ++e) {
    EXPECT_EQ(parsed.edge(e).src, original.edge(e).src);
    EXPECT_EQ(parsed.edge(e).dst, original.edge(e).dst);
    EXPECT_EQ(parsed.edge(e).out_rate, original.edge(e).out_rate);
    EXPECT_EQ(parsed.edge(e).in_rate, original.edge(e).in_rate);
  }
}

TEST(Serialize, ParsesCommentsAndBlankLines) {
  const auto g = from_text(
      "# a comment\n"
      "\n"
      "node a state=4   # trailing comment\n"
      "node b state=8\n"
      "edge a -> b out=2 in=3\n");
  EXPECT_EQ(g.node_count(), 2);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.node(0).state, 4);
  EXPECT_EQ(g.edge(0).out_rate, 2);
}

TEST(Serialize, UnknownDeclarationFails) {
  EXPECT_THROW(from_text("vertex a state=1\n"), ParseError);
}

TEST(Serialize, MissingFieldsFail) {
  EXPECT_THROW(from_text("node a\n"), ParseError);
  EXPECT_THROW(from_text("node a state=1\nedge a -> out=1 in=1\n"), ParseError);
}

TEST(Serialize, BadKeyValueFails) {
  EXPECT_THROW(from_text("node a weight=1\n"), ParseError);
  EXPECT_THROW(from_text("node a state=abc\n"), ParseError);
}

TEST(Serialize, UnknownEndpointFails) {
  EXPECT_THROW(from_text("node a state=1\nedge a -> b out=1 in=1\n"), ParseError);
}

TEST(Serialize, TrailingJunkFails) {
  EXPECT_THROW(from_text("node a state=1 extra\n"), ParseError);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    from_text("node a state=1\nbogus line here\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialize, SemanticErrorsPropagate) {
  // Duplicate node name is a GraphError from the builder, not a ParseError.
  EXPECT_THROW(from_text("node a state=1\nnode a state=2\n"), GraphError);
  // Zero rate is a RateError.
  EXPECT_THROW(from_text("node a state=1\nnode b state=1\nedge a -> b out=0 in=1\n"),
               RateError);
}

}  // namespace
}  // namespace ccs::sdf
