#include "schedule/steady_state.h"

#include <gtest/gtest.h>

#include "schedule/token_sim.h"
#include "sdf/min_buffer.h"
#include "sdf/repetition.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::schedule {
namespace {

TEST(SteadyState, DemandDrivenCompletesOneIteration) {
  for (const auto& app : ccs::workloads::streamit_suite()) {
    const auto caps = sdf::feasible_buffers(app.graph);
    const auto seq = demand_driven_iteration(app.graph, caps);
    const sdf::RepetitionVector reps(app.graph);
    EXPECT_EQ(static_cast<std::int64_t>(seq.size()), reps.total_firings()) << app.name;
    // Replaying must drain.
    TokenSim sim(app.graph, caps);
    for (const auto v : seq) sim.fire(v, 1);
    EXPECT_TRUE(sim.drained()) << app.name;
    for (sdf::NodeId v = 0; v < app.graph.node_count(); ++v) {
      EXPECT_EQ(sim.fired(v), reps.count(v)) << app.name << " node " << v;
    }
  }
}

TEST(SteadyState, DemandDrivenThrowsOnImpossibleCaps) {
  // A two-hop chain with rates forcing more than capacity 3 in flight.
  sdf::SdfGraph g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 4, 4);
  // Capacity equal to one burst works; capacity below bursts was rejected by
  // TokenSim. Test a subtler failure: diamond with reconvergent paths where
  // one branch's buffer is too small to let the other drain.
  sdf::SdfGraph d;
  d.add_node("s", 1);
  d.add_node("x", 1);
  d.add_node("y", 1);
  d.add_node("t", 1);
  d.add_edge(0, 1, 1, 1);   // s->x
  d.add_edge(0, 2, 2, 2);   // s->y
  d.add_edge(1, 3, 1, 1);   // x->t
  d.add_edge(2, 3, 2, 2);   // y->t
  // Minimal per-edge caps: s->x needs 1... choose caps so that t needs both
  // inputs but y's path starves: cap(s->y) = 2, but t consumes 1 from x and
  // 2 from y per firing. With cap(x->t) = 1, schedule works; with
  // cap(s->x) = 1 and x blocked because t waits on y whose buffer is held by
  // unfired tokens... Use uniform unit caps where a burst of 2 can't fit.
  const std::int64_t caps[] = {1, 2, 1, 2};
  EXPECT_NO_THROW(demand_driven_iteration(d, caps));
}

TEST(SteadyState, SingleAppearanceShapeAndCaps) {
  const auto g = ccs::workloads::filter_bank(4);
  std::vector<std::int64_t> caps;
  const auto seq = single_appearance_iteration(g, &caps);
  const sdf::RepetitionVector reps(g);
  EXPECT_EQ(static_cast<std::int64_t>(seq.size()), reps.total_firings());
  // Consecutive equal entries: each module appears in exactly one run.
  std::set<sdf::NodeId> seen;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i == 0 || seq[i] != seq[i - 1]) {
      EXPECT_TRUE(seen.insert(seq[i]).second) << "module reappears at " << i;
    }
  }
  // Declared caps make the sequence feasible.
  TokenSim sim(g, caps);
  for (const auto v : seq) sim.fire(v, 1);
  EXPECT_TRUE(sim.drained());
}

TEST(SteadyState, SingleAppearanceWorksAcrossRandomDags) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    ccs::workloads::SeriesParallelSpec spec;
    spec.target_nodes = 20;
    const auto g = series_parallel_dag(spec, rng);
    std::vector<std::int64_t> caps;
    const auto seq = single_appearance_iteration(g, &caps);
    TokenSim sim(g, caps);
    for (const auto v : seq) sim.fire(v, 1);
    EXPECT_TRUE(sim.drained()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ccs::schedule
