#include <gtest/gtest.h>

#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/pipeline_dp.h"
#include "sdf/gain.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs::partition {
namespace {

using sdf::NodeId;
using sdf::SdfGraph;

TEST(DagGreedy, ProducesValidBoundedPartition) {
  Rng rng(5);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 5;
  spec.width = 4;
  const auto g = layered_homogeneous_dag(spec, rng);
  const std::int64_t bound = 600;
  const auto p = dag_greedy_partition(g, bound);
  EXPECT_TRUE(validate_partition(g, p).empty());
  EXPECT_TRUE(is_well_ordered(g, p));
  EXPECT_TRUE(is_bounded(g, p, bound));
}

TEST(DagGreedy, GainAwareVariantValidToo) {
  Rng rng(6);
  ccs::workloads::SeriesParallelSpec spec;
  spec.target_nodes = 30;
  const auto g = series_parallel_dag(spec, rng);
  const std::int64_t bound = 700;
  const auto p = dag_greedy_gain_partition(g, bound);
  EXPECT_TRUE(validate_partition(g, p).empty());
  EXPECT_TRUE(is_well_ordered(g, p));
  EXPECT_TRUE(is_bounded(g, p, bound));
}

TEST(DagGreedy, GainAwareNeverWorseOnHourglass) {
  // On the hourglass the cheap cuts are at the waist; the gain-aware packer
  // should find a strictly cheaper partition than blind first-fit.
  const auto g = ccs::workloads::hourglass_pipeline(24, 100, 2);
  const sdf::GainMap gains(g);
  const std::int64_t bound = 500;
  const auto blind = dag_greedy_partition(g, bound);
  const auto aware = dag_greedy_gain_partition(g, bound);
  EXPECT_LE(bandwidth(g, gains, aware), bandwidth(g, gains, blind));
}

TEST(DagGreedy, InfeasibleThrows) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  EXPECT_THROW(dag_greedy_partition(g, 50), Error);
  EXPECT_THROW(dag_greedy_gain_partition(g, 50), Error);
}

TEST(DagRefine, NeverIncreasesBandwidthAndStaysValid) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    ccs::workloads::SeriesParallelSpec spec;
    spec.target_nodes = 24;
    const auto g = series_parallel_dag(spec, rng);
    const sdf::GainMap gains(g);
    const std::int64_t bound = 800;
    const auto start = dag_greedy_partition(g, bound);
    RefineOptions opts;
    opts.state_bound = bound;
    const auto refined = refine_partition(g, start, opts);
    EXPECT_TRUE(validate_partition(g, refined).empty()) << "trial " << trial;
    EXPECT_TRUE(is_well_ordered(g, refined)) << "trial " << trial;
    EXPECT_TRUE(is_bounded(g, refined, bound)) << "trial " << trial;
    EXPECT_LE(bandwidth(g, gains, refined), bandwidth(g, gains, start))
        << "trial " << trial;
  }
}

TEST(DagRefine, CanSplitWithNewComponents) {
  Rng rng(8);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  const auto g = layered_homogeneous_dag(spec, rng);
  const sdf::GainMap gains(g);
  const std::int64_t bound = g.total_state();  // everything fits in one
  RefineOptions opts;
  opts.state_bound = bound;
  opts.allow_new_components = true;
  const auto start = Partition::whole(g);
  const auto refined = refine_partition(g, start, opts);
  // Whole-graph partition has bandwidth 0 -- already optimal, must not split.
  EXPECT_EQ(bandwidth(g, gains, refined), Rational(0));
}

TEST(DagExact, MatchesPipelineDpOnChains) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = ccs::workloads::random_pipeline(10, 10, 80, 3, rng);
    const std::int64_t bound = 170;
    if (g.max_state() > bound) continue;
    const auto dp = pipeline_optimal_partition(g, bound);
    ExactOptions opts;
    opts.state_bound = bound;
    const auto exact = dag_exact_partition(g, opts);
    ASSERT_TRUE(exact.has_value()) << "trial " << trial;
    EXPECT_EQ(exact->bandwidth, dp.bandwidth) << "trial " << trial;
  }
}

TEST(DagExact, BeatsOrMatchesHeuristicsOnSmallDags) {
  Rng rng(10);
  for (int trial = 0; trial < 6; ++trial) {
    ccs::workloads::LayeredSpec spec;
    spec.layers = 3;
    spec.width = 3;
    spec.state_lo = 50;
    spec.state_hi = 150;
    const auto g = layered_homogeneous_dag(spec, rng);
    const sdf::GainMap gains(g);
    const std::int64_t bound = 400;
    ExactOptions opts;
    opts.state_bound = bound;
    const auto exact = dag_exact_partition(g, opts);
    ASSERT_TRUE(exact.has_value()) << "trial " << trial;
    EXPECT_TRUE(is_well_ordered(g, exact->partition));
    EXPECT_TRUE(is_bounded(g, exact->partition, bound));
    EXPECT_EQ(bandwidth(g, gains, exact->partition), exact->bandwidth);

    const auto greedy = dag_greedy_partition(g, bound);
    RefineOptions refine;
    refine.state_bound = bound;
    const auto refined = refine_partition(g, greedy, refine);
    EXPECT_LE(exact->bandwidth, bandwidth(g, gains, greedy)) << "trial " << trial;
    EXPECT_LE(exact->bandwidth, bandwidth(g, gains, refined)) << "trial " << trial;
  }
}

TEST(DagExact, SingleComponentWhenEverythingFits) {
  Rng rng(11);
  ccs::workloads::LayeredSpec spec;
  spec.layers = 2;
  spec.width = 2;
  const auto g = layered_homogeneous_dag(spec, rng);
  ExactOptions opts;
  opts.state_bound = g.total_state();
  const auto exact = dag_exact_partition(g, opts);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->bandwidth, Rational(0));
  EXPECT_EQ(exact->partition.num_components, 1);
}

TEST(DagExact, RefusesOversizedGraphs) {
  const auto g = ccs::workloads::des(16);  // 66 nodes
  ExactOptions opts;
  opts.state_bound = 10000;
  opts.max_nodes = 24;
  EXPECT_EQ(dag_exact_partition(g, opts), std::nullopt);
}

TEST(DagExact, InfeasibleModuleThrows) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  ExactOptions opts;
  opts.state_bound = 50;
  EXPECT_THROW(dag_exact_partition(g, opts), Error);
}

TEST(DagExact, MinBandwidthHelper) {
  const auto g = ccs::workloads::uniform_pipeline(6, 100);
  // bound 200: components of <= 2 modules; 6 modules -> >= 3 components ->
  // >= 2 cross edges, each gain 1.
  const auto bw = min_bandwidth(g, 200);
  ASSERT_TRUE(bw.has_value());
  EXPECT_EQ(*bw, Rational(2));
}

TEST(DagExact, HandlesMultirateGains) {
  // Exact partitioner must weigh gains, not edge counts: cutting the two
  // gain-1/4 edges beats cutting one gain-4 edge.
  SdfGraph g;
  const NodeId s = g.add_node("s", 60);
  const NodeId a = g.add_node("a", 60);
  const NodeId b = g.add_node("b", 60);
  const NodeId t = g.add_node("t", 60);
  g.add_edge(s, a, 4, 1);   // gain 4
  g.add_edge(a, b, 1, 16);  // gain(a)=4, edge gain 4, gain(b)=1/4
  g.add_edge(b, t, 1, 1);   // edge gain 1/4
  ExactOptions opts;
  opts.state_bound = 130;  // at most 2 modules per component
  const auto exact = dag_exact_partition(g, opts);
  ASSERT_TRUE(exact.has_value());
  // Best: {s} {a,b} {t}? cross: s->a gain 4 + b->t gain 1/4 = 17/4.
  // Or {s,a} {b,t}: cross a->b gain 4 = 4. <- optimal
  EXPECT_EQ(exact->bandwidth, Rational(4));
}

}  // namespace
}  // namespace ccs::partition
