// Textual serialization of schedules.
//
// Partitioning is a compile-time activity (the paper suggests even
// exponential partitioners are acceptable offline); a production runtime
// wants to compute a schedule once and ship it. The format is line
// oriented and references modules by name so it survives graph rebuilds
// that preserve naming:
//
//   schedule <name>
//   inputs <n>
//   outputs <n>
//   buffers <cap0> <cap1> ...          # one per edge, edge-id order
//   period <name> <name> ...           # firing order (possibly long)
//
// Reading validates the schedule against the graph (module names must
// resolve; buffer arity must match) but does not replay it -- callers who
// distrust the source should run schedule::check_schedule afterwards.
#pragma once

#include <iosfwd>
#include <string>

#include "schedule/parallel.h"
#include "schedule/schedule.h"
#include "sdf/graph.h"

namespace ccs::schedule {

/// Writes `s` for graph `g`.
void write_schedule(const sdf::SdfGraph& g, const Schedule& s, std::ostream& os);

/// Convenience: schedule as text.
std::string to_text(const sdf::SdfGraph& g, const Schedule& s);

/// Parses a schedule for `g`. Throws ParseError on malformed input and
/// ccs::Error when names or arities do not match the graph.
Schedule read_schedule(const sdf::SdfGraph& g, std::istream& is);

/// Convenience: parse from a string.
Schedule from_text(const sdf::SdfGraph& g, const std::string& text);

/// Writes a ParallelResult as one JSON object with a stable key order and
/// lossless integer counters, so E14-style parallel runs (and the
/// pool-backed cluster reimplementation) can be diffed in CI exactly like
/// sweep CSVs. The core::ClusterReport has a matching write_json of its own
/// (it lives a layer up and cannot be serialized from here).
void write_parallel_json(const ParallelResult& r, std::ostream& os);

/// Convenience: result as a JSON string.
std::string to_json(const ParallelResult& r);

}  // namespace ccs::schedule
