// core::Planner -- the session-level planning API.
//
// A Planner is constructed once per (graph, options) pair: construction
// validates the graph against the paper's model assumptions and the cache
// geometry, and caches the gain/repetition analysis. Every subsequent call
// -- plan() with the configured or an explicit partitioner, plan_all() over
// every applicable registered strategy, compare() against the theoretical
// lower bound -- reuses that session state instead of re-deriving it.
// Partitioners are resolved by name through partition::Registry, so custom
// strategies registered by the application participate with no core changes.
//
//   using namespace ccs;
//   core::PlannerOptions opts;
//   opts.cache.capacity_words = 32 * 1024;
//   core::Planner planner(graph, opts);              // validates once
//   core::Plan plan = planner.plan();                // "auto" partitioner
//   core::Plan greedy = planner.plan("dag-greedy");  // any registry key
//   for (const auto& c : planner.compare())          // predicted vs bound
//     std::cout << c.partitioner << ": " << c.predicted_misses_per_input
//               << " (lower bound " << c.lower_bound_misses_per_input << ")\n";
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "iomodel/types.h"
#include "partition/partition.h"
#include "partition/registry.h"
#include "sdf/gain.h"
#include "sdf/graph.h"
#include "schedule/schedule.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/rational.h"

namespace ccs::core {

/// Planning knobs.
struct PlannerOptions {
  iomodel::CacheConfig cache;          ///< M (words) and B (words/block).
  double c_bound = 3.0;                ///< Components hold at most c*M state.
  std::string partitioner = "auto";    ///< partition::Registry key, or "auto"
                                       ///< (DP for pipelines, exact for small
                                       ///< dags, refined greedy otherwise).
  std::int64_t t_multiplier = 1;       ///< Batch scaling beyond the legal minimum.
  std::int32_t exact_max_nodes = 20;   ///< "auto" switches off exact above this.
  std::uint64_t seed = 1;              ///< For randomized partitioners (anneal).
};

/// Everything the planner decided, plus its cost predictions.
struct Plan {
  partition::Partition partition;
  schedule::Schedule schedule;
  analysis::CostPrediction predicted;
  Rational partition_bandwidth;        ///< bandwidth(P) of the chosen partition.
  std::string partitioner_name;        ///< Registry key ("pipeline-dp", ...).
  std::int64_t batch_t = 0;            ///< Source firings per batch.
};

/// One row of Planner::compare(): a strategy's plan next to the graph's
/// schedule-independent lower bound (Theorems 3/7/10).
struct StrategyComparison {
  std::string partitioner;                     ///< Registry key.
  Plan plan;
  double predicted_misses_per_input = 0.0;     ///< Lemma 4/8 closed form.
  double lower_bound_misses_per_input = 0.0;   ///< (bw_LB / B); 0 if unavailable.
  bool has_lower_bound = false;                ///< Bound computed for this graph?
};

/// Planning session for one graph. Construction throws GraphError/RateError
/// for graphs outside the paper's model, MemoryError for a degenerate cache
/// geometry; the graph is copied so the session is self-contained (safe to
/// hand to a sweep-worker thread). Const member functions may be called
/// concurrently: the lazily cached lower bound is mutex-guarded.
class Planner {
 public:
  /// `registry` defaults to partition::Registry::global(); pass an isolated
  /// registry to control exactly which strategies a session can see. The
  /// registry must outlive the planner.
  Planner(sdf::SdfGraph graph, PlannerOptions options,
          const partition::Registry* registry = nullptr);

  const sdf::SdfGraph& graph() const noexcept { return graph_; }
  const PlannerOptions& options() const noexcept { return options_; }

  /// Plans with options().partitioner. Throws ccs::Error (listing valid
  /// keys) for an unknown name and when no c-bounded partition exists.
  Plan plan() const;

  /// Plans with an explicit strategy (any registry key, or "auto").
  Plan plan(const std::string& partitioner) const;

  /// Plans with every strategy applicable to this graph, in key order.
  std::vector<Plan> plan_all() const;

  /// plan_all() folded against the lower bound: one row per applicable
  /// strategy, each with the Lemma 4/8 prediction and the Theorem 3/7/10
  /// bound (the bound is graph-level, computed once per session and shared
  /// by every row). Rows are sorted by predicted cost, best first.
  std::vector<StrategyComparison> compare() const;

  /// The registry key "auto" resolves to for this graph.
  std::string resolve_auto() const;

  /// The strategy context derived from the options (exposed so callers can
  /// probe Registry::applicable_keys with exactly the planner's view).
  partition::StrategyContext strategy_context() const;

 private:
  /// Lower-bound bandwidth (Theorems 3/7/10), computed once on demand.
  std::optional<Rational> lower_bound_bandwidth() const;

  sdf::SdfGraph graph_;
  PlannerOptions options_;
  const partition::Registry* registry_;
  sdf::GainMap gains_;  ///< Cached across every plan/compare call.

  // Lazily cached lower bound (strategy-independent, potentially
  // expensive), guarded so concurrent compare() calls on a const session
  // do not race.
  mutable Mutex lower_bound_mutex_;
  mutable bool lower_bound_computed_ CCS_GUARDED_BY(lower_bound_mutex_) = false;
  mutable std::optional<Rational> lower_bound_bw_ CCS_GUARDED_BY(lower_bound_mutex_);
};

/// Multi-line human-readable report of a plan: partition composition,
/// batch parameters, buffer budget, predicted cost, and the assumptions
/// the plan relies on. Intended for logs and tooling output.
std::string explain(const sdf::SdfGraph& g, const Plan& plan);

/// Rejects degenerate cache geometries (non-positive block, cache smaller
/// than one block) with a recoverable MemoryError. Every facade entry point
/// taking a caller-supplied geometry runs this before touching a simulator.
void validate_cache_geometry(const iomodel::CacheConfig& cache);

}  // namespace ccs::core
