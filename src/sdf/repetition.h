// Repetition vectors (Lee & Messerschmitt balance equations).
//
// The repetition vector q is the componentwise-smallest positive integer
// vector with q(u) * out(u,v) = q(v) * in(u,v) for every edge. One "steady
// state iteration" fires each module v exactly q(v) times and returns every
// channel to its initial token count; every periodic schedule is a
// concatenation of steady-state iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/gain.h"
#include "sdf/graph.h"

namespace ccs::sdf {

/// The repetition vector plus per-edge token traffic for one iteration.
class RepetitionVector {
 public:
  /// Computes q from the gain map (q(v) = gain(v) scaled to the smallest
  /// integer vector). Throws what GainMap throws, or OverflowError if the
  /// scaled values exceed 64 bits.
  explicit RepetitionVector(const SdfGraph& g);

  /// Firings of module v per steady-state iteration.
  std::int64_t count(NodeId v) const {
    CCS_EXPECTS(v >= 0 && v < static_cast<NodeId>(q_.size()), "node id out of range");
    return q_[static_cast<std::size_t>(v)];
  }

  /// Tokens crossing edge e per steady-state iteration
  /// (= q(src) * out_rate = q(dst) * in_rate).
  std::int64_t edge_tokens(EdgeId e) const {
    CCS_EXPECTS(e >= 0 && e < static_cast<EdgeId>(edge_tokens_.size()),
                "edge id out of range");
    return edge_tokens_[static_cast<std::size_t>(e)];
  }

  /// Total firings across all modules in one iteration.
  std::int64_t total_firings() const noexcept { return total_; }

  const std::vector<std::int64_t>& counts() const noexcept { return q_; }

 private:
  std::vector<std::int64_t> q_;
  std::vector<std::int64_t> edge_tokens_;
  std::int64_t total_ = 0;
};

}  // namespace ccs::sdf
