// Microbenchmark: online session throughput (google-benchmark).
//
// Firings/second through core::Stream::step -- the policy-plan + engine-run
// loop behind the serving surface -- against the equivalent batch
// Engine::run replay of the materialized dynamic schedule. The batch path
// amortizes one validation over the whole period; the stream path re-plans
// every component execution from live state, so the gap between the two is
// the price of true online decision making. A server regime measures the
// added cost of multiplexing two tenants over one shared cache.

#include <benchmark/benchmark.h>

#include "core/server.h"
#include "core/stream.h"
#include "iomodel/cache.h"
#include "partition/pipeline_dp.h"
#include "runtime/engine.h"
#include "schedule/dynamic.h"
#include "workloads/pipelines.h"

namespace {

using namespace ccs;

constexpr std::int64_t kM = 1024;
constexpr std::int64_t kOutputs = 4096;

sdf::SdfGraph bench_pipeline() { return workloads::uniform_pipeline(16, 300); }

partition::Partition bench_partition(const sdf::SdfGraph& g) {
  return partition::pipeline_optimal_partition(g, 3 * kM).partition;
}

/// Batch side: replay the materialized dynamic schedule through Engine::run.
void BM_BatchDynamicReplay(benchmark::State& state) {
  const auto g = bench_pipeline();
  const auto p = bench_partition(g);
  const auto dyn = schedule::dynamic_pipeline_schedule(g, p, kM, kOutputs);
  iomodel::LruCache cache(iomodel::CacheConfig{4 * kM, 8});
  runtime::EngineOptions opts;
  opts.per_node_attribution = false;
  runtime::Engine engine(g, dyn.buffer_caps, cache, opts);
  std::int64_t firings = 0;
  for (auto _ : state) {
    engine.run(dyn.period);
    firings += static_cast<std::int64_t>(dyn.period.size());
  }
  state.SetItemsProcessed(firings);
}
BENCHMARK(BM_BatchDynamicReplay);

/// Online side: the same work decided live through Stream::step.
void BM_StreamStepServe(benchmark::State& state) {
  const auto g = bench_pipeline();
  const auto p = bench_partition(g);
  std::int64_t firings = 0;
  for (auto _ : state) {
    state.PauseTiming();
    iomodel::LruCache cache(iomodel::CacheConfig{4 * kM, 8});
    core::StreamOptions opts;
    opts.engine.per_node_attribution = false;
    core::Stream stream(g, p, cache, kM, opts);
    state.ResumeTiming();
    stream.push(stream.policy().batch_credit(kOutputs));
    while (stream.outputs_produced() < kOutputs) {
      benchmark::DoNotOptimize(stream.step().component);
    }
    stream.drain();
    firings += stream.stats().firings;
  }
  state.SetItemsProcessed(firings);
}
BENCHMARK(BM_StreamStepServe);

/// Serving regime: two tenants multiplexed over one shared cache.
void BM_ServerTwoTenants(benchmark::State& state) {
  const auto g = bench_pipeline();
  const auto p = bench_partition(g);
  std::int64_t firings = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ServerOptions opts;
    opts.cache = iomodel::CacheConfig{4 * kM, 8};
    core::Server server(opts);
    core::StreamOptions sopts;
    sopts.engine.per_node_attribution = false;
    server.admit("a", g, p, sopts, kM);
    server.admit("b", g, p, sopts, kM);
    state.ResumeTiming();
    for (int round = 0; round < 8; ++round) {
      for (core::TenantId t = 0; t < server.tenant_count(); ++t) {
        server.push(t, kOutputs / 8);
      }
      server.run_until_idle();
    }
    server.drain_all();
    const auto report = server.report();
    firings += report.aggregate.firings;
  }
  state.SetItemsProcessed(firings);
}
BENCHMARK(BM_ServerTwoTenants);

}  // namespace

BENCHMARK_MAIN();
