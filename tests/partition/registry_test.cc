#include "partition/registry.h"

#include <gtest/gtest.h>

#include "core/planner.h"
#include "schedule/validate.h"
#include "sdf/gain.h"
#include "util/error.h"
#include "workloads/pipelines.h"
#include "workloads/streamit.h"

namespace ccs::partition {
namespace {

StrategyContext ctx_for(std::int64_t m) {
  StrategyContext ctx;
  ctx.cache_words = m;
  ctx.state_bound = 3 * m;
  return ctx;
}

TEST(PartitionRegistry, BuiltinsRegistered) {
  auto& r = Registry::global();
  for (const std::string name :
       {"pipeline-dp", "pipeline-greedy", "dag-greedy", "dag-greedy-gain", "dag-refined",
        "anneal", "agglomerative", "exact"}) {
    EXPECT_TRUE(r.contains(name)) << name;
    EXPECT_FALSE(r.find(name).description.empty()) << name;
  }
}

TEST(PartitionRegistry, UnknownKeyErrorListsEveryValidKey) {
  const auto g = workloads::uniform_pipeline(6, 100);
  try {
    Registry::global().build("nope", g, ctx_for(512));
    FAIL() << "expected ccs::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown partitioner 'nope'"), std::string::npos) << what;
    for (const auto& key : Registry::global().keys()) {
      EXPECT_NE(what.find(key), std::string::npos) << "missing " << key << " in: " << what;
    }
  }
}

TEST(PartitionRegistry, DuplicateRegistrationThrows) {
  Registry r;
  register_builtin_partitioners(r);
  EXPECT_THROW(register_builtin_partitioners(r), Error);
  EXPECT_THROW(
      r.add("dag-greedy", {[](const sdf::SdfGraph& g, const StrategyContext&) {
                             return Partition::whole(g);
                           },
                           nullptr, "dup"}),
      Error);
  EXPECT_THROW(r.add("", {nullptr, nullptr, "empty name"}), Error);
}

TEST(PartitionRegistry, ApplicabilityGatesPipelineAndExactStrategies) {
  auto& r = Registry::global();
  const auto pipeline = workloads::uniform_pipeline(6, 100);
  const auto dag = workloads::fm_radio(10);  // 25 nodes, not a pipeline

  auto ctx = ctx_for(1024);
  ctx.exact_max_nodes = 20;
  const auto pipeline_keys = r.applicable_keys(pipeline, ctx);
  EXPECT_EQ(pipeline_keys.size(), r.keys().size());  // everything applies

  const auto dag_keys = r.applicable_keys(dag, ctx);
  for (const auto& key : dag_keys) {
    EXPECT_NE(key, "pipeline-dp");
    EXPECT_NE(key, "pipeline-greedy");
    EXPECT_NE(key, "exact");
  }
  EXPECT_EQ(dag_keys.size(), r.keys().size() - 3);
}

TEST(PartitionRegistry, CustomStrategyRoundTripsThroughPlanner) {
  // A custom strategy in an isolated registry: split the pipeline into
  // front/back halves. The planner must resolve it by name and build a
  // valid schedule from its partition.
  Registry r;
  register_builtin_partitioners(r);
  r.add("halves", {[](const sdf::SdfGraph& g, const StrategyContext&) {
                     Partition p;
                     p.num_components = 2;
                     p.assignment.assign(static_cast<std::size_t>(g.node_count()), 0);
                     for (sdf::NodeId v = g.node_count() / 2; v < g.node_count(); ++v) {
                       p.assignment[static_cast<std::size_t>(v)] = 1;
                     }
                     return p;
                   },
                   nullptr, "front/back split"});

  const auto g = workloads::uniform_pipeline(8, 100);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  opts.partitioner = "halves";
  const core::Planner planner(g, opts, &r);
  const auto plan = planner.plan();
  EXPECT_EQ(plan.partitioner_name, "halves");
  EXPECT_EQ(plan.partition.num_components, 2);
  EXPECT_TRUE(schedule::check_schedule(g, plan.schedule).ok);

  // The isolated registry does not leak into the global one.
  EXPECT_FALSE(Registry::global().contains("halves"));
}

TEST(PartitionRegistry, EveryBuiltinBuildsAValidPartitionOnAPipeline) {
  const auto g = workloads::uniform_pipeline(10, 150);
  const auto ctx = ctx_for(512);
  const sdf::GainMap gains(g);
  for (const auto& name : Registry::global().applicable_keys(g, ctx)) {
    const auto p = Registry::global().build(name, g, ctx);
    EXPECT_TRUE(validate_partition(g, p).empty()) << name;
    EXPECT_TRUE(is_well_ordered(g, p)) << name;
    EXPECT_TRUE(is_bounded(g, p, ctx.state_bound)) << name;
  }
}

}  // namespace
}  // namespace ccs::partition
