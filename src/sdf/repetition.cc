#include "sdf/repetition.h"

#include "util/int_math.h"

namespace ccs::sdf {

RepetitionVector::RepetitionVector(const SdfGraph& g) {
  const GainMap gains(g);
  const auto n = static_cast<std::size_t>(g.node_count());

  // Scale all gains by the lcm of their denominators to get integers, then
  // divide by the common gcd to get the smallest integer vector.
  std::int64_t den_lcm = 1;
  for (std::size_t v = 0; v < n; ++v) {
    den_lcm = checked_lcm(den_lcm, gains.node_gain(static_cast<NodeId>(v)).den());
  }
  q_.resize(n);
  std::int64_t common = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const Rational& gv = gains.node_gain(static_cast<NodeId>(v));
    CCS_CHECK(gv.is_positive(), "gains of reachable modules are positive");
    q_[v] = checked_mul(gv.num(), den_lcm / gv.den());
    common = gcd64(common, q_[v]);
  }
  CCS_CHECK(common > 0, "gcd of positive repetition counts is positive");
  total_ = 0;
  for (auto& qv : q_) {
    qv /= common;
    total_ = checked_add(total_, qv);
  }

  edge_tokens_.resize(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const std::int64_t produced =
        checked_mul(q_[static_cast<std::size_t>(edge.src)], edge.out_rate);
    const std::int64_t consumed =
        checked_mul(q_[static_cast<std::size_t>(edge.dst)], edge.in_rate);
    CCS_CHECK(produced == consumed, "balance equation violated after scaling");
    edge_tokens_[static_cast<std::size_t>(e)] = produced;
  }
}

}  // namespace ccs::sdf
