// Golden gate for the PR 5 parallel-simulator refactor: the simulator now
// runs over caller-provided worker caches (runtime::WorkerPool's private
// L1s in production), and every path must reproduce the pre-refactor
// implementation bit-for-bit. The constants below were captured from the
// original hand-rolled-cache implementation (PR 4 tree) for the exact E14
// configuration and the parallel_test fixtures; all three entry points --
// the legacy signature, the span-of-caches overload, and the pool-backed
// core::simulate_parallel_on_pool (with and without a shared LLC) -- must
// hit them exactly.

#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.h"
#include "iomodel/cache.h"
#include "partition/dag_greedy.h"
#include "runtime/worker_pool.h"
#include "schedule/parallel.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs::schedule {
namespace {

/// One captured run: per-worker vectors pinned along with the totals.
struct Golden {
  std::int32_t workers;
  std::int64_t makespan;
  std::int64_t total_misses;
  std::int64_t total_firings;
  std::int64_t outputs;
  std::vector<std::int64_t> worker_misses;
  std::vector<std::int64_t> worker_busy;
  std::vector<std::int64_t> worker_batches;
};

void expect_matches(const ParallelResult& r, const Golden& g, const std::string& tag) {
  EXPECT_EQ(r.workers, g.workers) << tag;
  EXPECT_EQ(r.makespan, g.makespan) << tag;
  EXPECT_EQ(r.total_misses, g.total_misses) << tag;
  EXPECT_EQ(r.total_firings, g.total_firings) << tag;
  EXPECT_EQ(r.outputs, g.outputs) << tag;
  EXPECT_EQ(r.worker_misses, g.worker_misses) << tag;
  EXPECT_EQ(r.worker_busy, g.worker_busy) << tag;
  EXPECT_EQ(r.worker_batches, g.worker_batches) << tag;
}

sdf::SdfGraph e14_graph() {
  Rng rng(1414);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 6;
  spec.state_lo = 150;
  spec.state_hi = 300;
  spec.edge_prob = 0.15;
  return workloads::layered_homogeneous_dag(spec, rng);
}

// Captured from the pre-PR implementation: E14's exact configuration
// (m=128, 4096-word workers, B=8, min_outputs=4096, dag-greedy 900).
const std::vector<Golden>& e14_goldens() {
  static const std::vector<Golden> goldens = {
      {1, 109056, 64036, 109568, 4096, {64036}, {109568}, {263}},
      {2, 62848, 68461, 109568, 4096, {36290, 32171}, {62976, 46592}, {132, 131}},
      {4,
       46592,
       34790,
       109568,
       4096,
       {13058, 10272, 11173, 287},
       {38656, 25344, 29184, 16384},
       {100, 66, 65, 32}},
      {8,
       46592,
       34790,
       109568,
       4096,
       {13058, 10272, 11173, 287, 0, 0, 0, 0},
       {38656, 25344, 29184, 16384, 0, 0, 0, 0},
       {100, 66, 65, 32, 0, 0, 0, 0}},
  };
  return goldens;
}

TEST(ParallelGolden, LegacySignatureReproducesE14) {
  const auto g = e14_graph();
  const auto p = partition::dag_greedy_partition(g, 900);
  for (const Golden& golden : e14_goldens()) {
    const auto r = simulate_parallel_homogeneous(g, p, 128, 4096, 8, golden.workers, 4096);
    expect_matches(r, golden, "legacy workers=" + std::to_string(golden.workers));
  }
}

TEST(ParallelGolden, SpanOfCachesReproducesE14) {
  const auto g = e14_graph();
  const auto p = partition::dag_greedy_partition(g, 900);
  for (const Golden& golden : e14_goldens()) {
    std::vector<iomodel::LruCache> caches;
    caches.reserve(static_cast<std::size_t>(golden.workers));
    for (std::int32_t w = 0; w < golden.workers; ++w) {
      caches.emplace_back(iomodel::CacheConfig{4096, 8});
    }
    std::vector<iomodel::CacheSim*> views;
    for (auto& cache : caches) views.push_back(&cache);
    const auto r = simulate_parallel_homogeneous(g, p, 128, views, 4096);
    expect_matches(r, golden, "span workers=" + std::to_string(golden.workers));
  }
}

TEST(ParallelGolden, WorkerPoolClientReproducesE14) {
  const auto g = e14_graph();
  const auto p = partition::dag_greedy_partition(g, 900);
  for (const Golden& golden : e14_goldens()) {
    runtime::WorkerPool pool(runtime::WorkerPoolOptions{golden.workers, {4096, 8}, 0});
    const auto r = core::simulate_parallel_on_pool(g, p, 128, pool, 4096);
    expect_matches(r, golden, "pool workers=" + std::to_string(golden.workers));
    EXPECT_EQ(r.llc.accesses, 0);  // no shared level configured
  }
}

TEST(ParallelGolden, SharedLlcLeavesWorkerCountersUntouched) {
  // A private level's behaviour is independent of the shared level behind
  // it (probing the LLC never mutates L1 state), so even an LLC-backed pool
  // must reproduce the flat-cache goldens exactly -- and additionally
  // report shared-level traffic.
  const auto g = e14_graph();
  const auto p = partition::dag_greedy_partition(g, 900);
  for (const Golden& golden : e14_goldens()) {
    runtime::WorkerPool pool(
        runtime::WorkerPoolOptions{golden.workers, {4096, 8}, 64 * 1024});
    const auto r = core::simulate_parallel_on_pool(g, p, 128, pool, 4096);
    expect_matches(r, golden, "llc-pool workers=" + std::to_string(golden.workers));
    EXPECT_GT(r.llc.accesses, 0);
    // Every private miss probes the LLC exactly once.
    EXPECT_EQ(r.llc.accesses, r.total_misses);
  }
}

TEST(ParallelGolden, ParallelTestFixturesStayBitIdentical) {
  // The parallel_test fixtures, captured pre-refactor: a wide layered dag
  // on 1 and 3 workers, and a segmented pipeline on 4.
  {
    Rng rng(1);
    workloads::LayeredSpec spec;
    spec.layers = 4;
    spec.width = 4;
    spec.state_lo = 100;
    spec.state_hi = 200;
    const auto g = workloads::layered_homogeneous_dag(spec, rng);
    const auto p = partition::dag_greedy_partition(g, 600);
    expect_matches(simulate_parallel_homogeneous(g, p, 64, 4096, 8, 1, 512),
                   {1, 9664, 3378, 9920, 512, {3378}, {9920}, {43}}, "wide1");
    expect_matches(simulate_parallel_homogeneous(g, p, 64, 4096, 8, 3, 512),
                   {3, 4288, 970, 10176, 512, {514, 340, 116}, {4288, 3840, 2048},
                    {19, 17, 8}},
                   "wide3");
  }
  {
    const auto g = workloads::uniform_pipeline(12, 100);
    const auto p = partition::dag_greedy_partition(g, 400);
    expect_matches(simulate_parallel_homogeneous(g, p, 64, 4096, 8, 4, 512),
                   {4, 2560, 356, 6912, 512, {173, 122, 61, 0}, {2560, 2304, 2048, 0},
                    {10, 9, 8, 0}},
                   "pipe4");
  }
}

// --- ParallelResult::imbalance edge cases (the zero-busy satellite fix) ---

TEST(ParallelImbalance, SingleWorkerPoolIsPerfectlyBalanced) {
  ParallelResult r;
  r.workers = 1;
  r.worker_busy = {9920};
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
}

TEST(ParallelImbalance, AllIdlePoolReportsZero) {
  ParallelResult r;
  r.workers = 3;
  r.worker_busy = {0, 0, 0};
  EXPECT_DOUBLE_EQ(r.imbalance(), 0.0);
}

TEST(ParallelImbalance, EmptyPoolReportsZero) {
  EXPECT_DOUBLE_EQ(ParallelResult{}.imbalance(), 0.0);
}

TEST(ParallelImbalance, PartiallyIdlePoolStaysFinite) {
  ParallelResult r;
  r.workers = 2;
  r.worker_busy = {100, 0};
  EXPECT_DOUBLE_EQ(r.imbalance(), 2.0);  // worst 100 / average 50
}

}  // namespace
}  // namespace ccs::schedule
