#include "iomodel/hierarchy.h"

#include "util/contracts.h"

namespace ccs::iomodel {

HierarchyCache::HierarchyCache(std::vector<std::int64_t> level_words,
                               std::int64_t block_words)
    : CacheSim(block_words) {
  CCS_EXPECTS(!level_words.empty(), "hierarchy needs at least one level");
  std::int64_t prev = 0;
  for (const std::int64_t words : level_words) {
    CCS_EXPECTS(words > prev, "level capacities must strictly increase");
    prev = words;
    levels_.push_back(std::make_unique<LruCache>(CacheConfig{words, block_words}));
  }
}

void HierarchyCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  probe_block(block_of(addr), mode);
}

void HierarchyCache::do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) {
  for (BlockId b = first, e = first + count; b != e; ++b) probe_block(b, mode);
}

void HierarchyCache::flush() {
  for (auto& level : levels_) level->flush();
}

bool HierarchyCache::contains(Addr addr) const {
  return levels_.front()->contains(addr);
}

const CacheStats& HierarchyCache::level_stats(std::size_t level) const {
  CCS_EXPECTS(level < levels_.size(), "level out of range");
  return levels_[level]->stats();
}

std::int64_t HierarchyCache::level_words(std::size_t level) const {
  CCS_EXPECTS(level < levels_.size(), "level out of range");
  return levels_[level]->config().capacity_words;
}

namespace {

void check_llc_geometry(const CacheConfig& llc, const CacheConfig& l1) {
  CCS_EXPECTS(llc.block_words == l1.block_words,
              "shared LLC must use the private level's block size");
  CCS_EXPECTS(llc.capacity_words > l1.capacity_words,
              "shared LLC must be strictly larger than a private level");
}

}  // namespace

SharedLlcCache::SharedLlcCache(const CacheConfig& private_config, LruCache* llc,
                               Mutex* llc_mutex)
    : CacheSim(private_config.block_words),
      l1_(private_config),
      llc_(llc),
      llc_mutex_(llc_mutex) {
  CCS_EXPECTS((llc == nullptr) == (llc_mutex == nullptr),
              "a shared LLC and its mutex must be provided together");
  if (llc_ != nullptr) check_llc_geometry(llc_->config(), private_config);
}

SharedLlcCache::SharedLlcCache(const CacheConfig& private_config, ShardedLruCache* llc)
    : CacheSim(private_config.block_words),
      l1_(private_config),
      llc_(nullptr),
      llc_mutex_(nullptr),
      sharded_llc_(llc) {
  if (sharded_llc_ != nullptr) check_llc_geometry(sharded_llc_->config(), private_config);
}

void SharedLlcCache::access(Addr addr, AccessMode mode) {
  CCS_EXPECTS(addr >= 0, "negative address");
  probe_block(block_of(addr), mode);
}

void SharedLlcCache::do_access_blocks(BlockId first, std::int64_t count, AccessMode mode) {
  for (BlockId b = first, e = first + count; b != e; ++b) probe_block(b, mode);
}

void SharedLlcCache::flush() { l1_.flush(); }

}  // namespace ccs::iomodel
