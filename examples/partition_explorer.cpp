// Partition explorer: load a streaming graph from a text file (or generate a
// random one) and run partitioners from the registry on it, printing a
// quality report. Useful for understanding what the partitioners do to
// *your* graph before committing to a schedule.
//
//   $ ./partition_explorer --file=app.sdf --cache-words=1024
//   $ ./partition_explorer --random-nodes=24 --seed=7 --dump
//   $ ./partition_explorer --partitioner=dag-refined        # just one
//   $ ./partition_explorer --partitioner=help               # list keys
//
// The strategy set comes from partition::Registry: by default every
// strategy applicable to the graph runs; --partitioner=<name> selects one
// (any registered key, including custom strategies), and an unknown name
// fails with the registry's list of valid keys.
//
// Graph file format (see src/sdf/serialize.h):
//   node <name> state=<words>
//   edge <src> -> <dst> out=<rate> in=<rate>

#include <fstream>
#include <iostream>

#include "partition/dot.h"
#include "partition/registry.h"
#include "sdf/gain.h"
#include "sdf/serialize.h"
#include "sdf/validate.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("partition_explorer", "run registry partitioners on a graph and report quality");
  args.add_string("file", "", "graph file to load (empty: generate random)");
  args.add_int("random-nodes", 24, "node budget for the generated graph");
  args.add_int("seed", 1, "random generator seed");
  args.add_int("cache-words", 1024, "cache size M in words");
  args.add_double("c-bound", 3.0, "components hold at most c*M state");
  args.add_string("partitioner", "",
                  "registry key to run (empty: every applicable; 'help': list keys)");
  args.add_flag("dump", "print the graph in serialized form");
  args.add_string("dot", "", "write the best partition as Graphviz DOT to this file");
  try {
    if (!args.parse(argc, argv)) return 0;

    auto& registry = partition::Registry::global();
    if (args.get_string("partitioner") == "help") {
      std::cout << "registered partitioners:\n";
      for (const auto& key : registry.keys()) {
        std::cout << "  " << key << "  -- " << registry.find(key).description << "\n";
      }
      return 0;
    }

    sdf::SdfGraph g;
    if (const auto& path = args.get_string("file"); !path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      g = sdf::read_graph(in);
    } else {
      Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
      workloads::SeriesParallelSpec spec;
      spec.target_nodes = static_cast<std::int32_t>(args.get_int("random-nodes"));
      g = workloads::series_parallel_dag(spec, rng);
    }
    sdf::validate_or_throw(g, sdf::ValidationOptions{});
    if (args.get_flag("dump")) sdf::write_graph(g, std::cout);
    std::cout << "graph: " << g << "\n\n";

    const std::int64_t m = args.get_int("cache-words");
    partition::StrategyContext ctx;
    ctx.cache_words = m;
    ctx.state_bound =
        static_cast<std::int64_t>(args.get_double("c-bound") * static_cast<double>(m));
    ctx.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const sdf::GainMap gains(g);

    // One explicit key, or every strategy the registry deems applicable.
    // Registry::build throws for unknown keys with the valid key list in
    // the message, which is exactly what we want on stderr.
    std::vector<std::string> names;
    if (const auto& one = args.get_string("partitioner"); !one.empty()) {
      names.push_back(one);
    } else {
      names = registry.applicable_keys(g, ctx);
    }

    Table t("partitions at state bound " + std::to_string(ctx.state_bound) + " (M=" +
            std::to_string(m) + ")");
    t.set_header({"partitioner", "components", "bandwidth", "max state", "well-ordered"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight});

    partition::Partition best;
    Rational best_bw;
    bool have_best = false;
    for (const auto& name : names) {
      const auto p = registry.build(name, g, ctx);
      const auto q = partition::measure(g, gains, p);
      t.add_row({name, Table::num(static_cast<std::int64_t>(q.num_components)),
                 q.bandwidth.to_string(), Table::num(q.max_state),
                 q.well_ordered ? "yes" : "NO"});
      if (q.well_ordered && (!have_best || q.bandwidth < best_bw)) {
        best = p;
        best_bw = q.bandwidth;
        have_best = true;
      }
    }
    t.print(std::cout);

    if (const auto& dot_path = args.get_string("dot"); !dot_path.empty()) {
      if (!have_best) {
        std::cerr << "no well-ordered partition to export; skipping --dot=" << dot_path
                  << "\n";
        return 1;
      }
      std::ofstream out(dot_path);
      partition::write_dot(g, best, out);
      std::cout << "\nwrote " << dot_path << " (render with: dot -Tsvg " << dot_path
                << " -o partition.svg)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
