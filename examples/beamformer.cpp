// Beamformer (StreamIt-style): a two-level split-join dag run through every
// applicable registered partitioner in one Planner session.
//
//   $ ./beamformer [--channels=12] [--beams=4] [--cache-words=256]
//
// Demonstrates: Planner::plan_all() (every applicable registry strategy on
// one graph), partition quality metrics (bandwidth, degree, component
// states), and how partition quality translates into simulated cache misses
// (Corollary 9 in action).

#include <iostream>

#include "core/planner.h"
#include "core/scheduler.h"
#include "schedule/registry.h"
#include "sdf/gain.h"
#include "util/args.h"
#include "util/table.h"
#include "workloads/streamit.h"

int main(int argc, char** argv) {
  using namespace ccs;
  ArgParser args("beamformer", "dag partitioner comparison on the beamformer app");
  args.add_int("channels", 12, "input channels");
  args.add_int("beams", 4, "output beams");
  args.add_int("cache-words", 256, "cache size M in words");
  args.add_int("outputs", 1024, "sink firings per measurement");
  try {
    if (!args.parse(argc, argv)) return 0;
    const auto g = workloads::beamformer(static_cast<std::int32_t>(args.get_int("channels")),
                                         static_cast<std::int32_t>(args.get_int("beams")));
    const std::int64_t m = args.get_int("cache-words");
    const std::int64_t outputs = args.get_int("outputs");
    std::cout << "Beamformer: " << g << "\n\n";

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = 8;
    const core::Planner planner(g, opts);
    const sdf::GainMap gains(g);
    const iomodel::CacheConfig sim{4 * m, 8};

    Table t("partition quality and measured misses (M=" + std::to_string(m) + ")");
    t.set_header({"partitioner", "components", "bandwidth", "max state", "max degree",
                  "misses/output"});
    t.set_align({Align::kLeft, Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                 Align::kRight});
    {
      const auto naive = schedule::Registry::global().build("naive", g, {m, 8});
      const auto r = core::simulate(g, naive, sim, outputs);
      t.add_row({"(naive baseline)", "-", "-", "-", "-",
                 Table::num(r.misses_per_output(), 3)});
    }
    // One session, every applicable registered strategy: the planner skips
    // pipeline-only partitioners (this is a dag) and the exact DP (too many
    // nodes) on its own.
    core::Plan best;
    double best_mpo = -1.0;
    for (const auto& plan : planner.plan_all()) {
      const auto quality = partition::measure(g, gains, plan.partition);
      const auto r = core::simulate(g, plan.schedule, sim, outputs);
      t.add_row({plan.partitioner_name,
                 Table::num(static_cast<std::int64_t>(quality.num_components)),
                 quality.bandwidth.to_string(), Table::num(quality.max_state),
                 Table::num(static_cast<std::int64_t>(quality.max_degree)),
                 Table::num(r.misses_per_output(), 3)});
      if (best_mpo < 0.0 || r.misses_per_output() < best_mpo) {
        best_mpo = r.misses_per_output();
        best = plan;
      }
    }
    t.print(std::cout);

    // Show the measured winner's composition.
    std::cout << "\nbest partition (" << best.partitioner_name << ") components:\n";
    const auto comps = best.partition.components();
    for (std::size_t c = 0; c < comps.size(); ++c) {
      std::cout << "  [" << c << "]";
      std::int64_t state = 0;
      for (const auto v : comps[c]) state += g.node(v).state;
      for (const auto v : comps[c]) std::cout << " " << g.node(v).name;
      std::cout << "  (" << state << " words)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
