#include "latency/histogram.h"

#include <algorithm>
#include <bit>

#include "util/contracts.h"
#include "util/error.h"

namespace ccs::latency {

std::int32_t Histogram::bucket_of(std::int64_t value) noexcept {
  return static_cast<std::int32_t>(std::bit_width(static_cast<std::uint64_t>(value)));
}

std::int64_t Histogram::bucket_floor(std::int32_t bucket) noexcept {
  return bucket == 0 ? 0 : std::int64_t{1} << (bucket - 1);
}

void Histogram::record(std::int64_t value) {
  CCS_EXPECTS(value >= 0, "latency samples are modeled cycle counts, never negative");
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  sum_ += value;
  if (value > max_) max_ = value;
}

Histogram& Histogram::operator+=(const Histogram& other) noexcept {
  for (std::int32_t b = 0; b < kBucketCount; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
  return *this;
}

std::int64_t Histogram::quantile_permille(std::int64_t permille) const {
  CCS_EXPECTS(permille >= 0 && permille <= 1000, "permille rank out of [0, 1000]");
  if (count_ == 0) return 0;
  // Smallest rank the permille covers, at least 1 so p0 reports the
  // minimum's bucket. Integer ceiling; count_ * permille stays far below
  // 2^63 for any feasible sample count.
  const std::int64_t rank = std::max<std::int64_t>(1, (count_ * permille + 999) / 1000);
  std::int64_t cumulative = 0;
  std::int32_t top = 0;  // highest occupied bucket, for the exact-max arm
  for (std::int32_t b = kBucketCount - 1; b >= 0; --b) {
    if (buckets_[static_cast<std::size_t>(b)] > 0) {
      top = b;
      break;
    }
  }
  for (std::int32_t b = 0; b < kBucketCount; ++b) {
    cumulative += buckets_[static_cast<std::size_t>(b)];
    if (cumulative >= rank) return b == top ? max_ : bucket_floor(b);
  }
  return max_;  // unreachable: cumulative reaches count_ >= rank
}

Histogram Histogram::from_state(const std::array<std::int64_t, kBucketCount>& buckets,
                                std::int64_t max, std::int64_t sum) {
  Histogram h;
  std::int64_t count = 0;
  std::int32_t top = -1;
  for (std::int32_t b = 0; b < kBucketCount; ++b) {
    const std::int64_t n = buckets[static_cast<std::size_t>(b)];
    if (n < 0) throw Error("corrupt latency histogram: negative bucket count");
    if (n > 0) top = b;
    count += n;
  }
  if (max < 0 || sum < 0) {
    throw Error("corrupt latency histogram: negative max or sum");
  }
  if (count == 0) {
    if (max != 0 || sum != 0) {
      throw Error("corrupt latency histogram: empty buckets with nonzero max/sum");
    }
  } else if (bucket_of(max) != top) {
    throw Error("corrupt latency histogram: max outside the topmost bucket");
  }
  h.buckets_ = buckets;
  h.count_ = count;
  h.sum_ = sum;
  h.max_ = max;
  return h;
}

}  // namespace ccs::latency
