#include "partition/registry.h"

#include <algorithm>

#include "partition/agglomerative.h"
#include "partition/dag_anneal.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "sdf/gain.h"
#include "util/error.h"

namespace ccs::partition {

namespace {

bool pipeline_only(const sdf::SdfGraph& g, const StrategyContext&) {
  return g.is_pipeline();
}

Partition refined_partition(const sdf::SdfGraph& g, const StrategyContext& ctx) {
  // Refine from both greedy starts and keep the lower-bandwidth result:
  // neither start dominates across graph families.
  RefineOptions refine;
  refine.state_bound = ctx.state_bound;
  const sdf::GainMap gains(g);
  auto a = refine_partition(g, dag_greedy_partition(g, ctx.state_bound), refine);
  auto b = refine_partition(g, dag_greedy_gain_partition(g, ctx.state_bound), refine);
  return bandwidth(g, gains, a) <= bandwidth(g, gains, b) ? std::move(a) : std::move(b);
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  static const bool initialized = (register_builtin_partitioners(instance), true);
  (void)initialized;
  return instance;
}

std::vector<std::string> Registry::applicable_keys(const sdf::SdfGraph& g,
                                                   const StrategyContext& ctx) const {
  std::vector<std::string> out;
  for (const std::string& name : keys()) {
    const Strategy s = find(name);
    if (!s.applicable || s.applicable(g, ctx)) out.push_back(name);
  }
  return out;
}

Partition Registry::build(const std::string& name, const sdf::SdfGraph& g,
                          const StrategyContext& ctx) const {
  return find(name).build(g, ctx);
}

void register_builtin_partitioners(Registry& r) {
  r.add("pipeline-dp",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return pipeline_optimal_partition(g, ctx.state_bound).partition;
         },
         pipeline_only, "optimal pipeline segmentation DP (poly time, pipelines only)"});
  r.add("pipeline-greedy",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return pipeline_greedy_partition(g, ctx.cache_words).partition;
         },
         pipeline_only, "Theorem 5 accretion + gain-min cuts (pipelines only)"});
  r.add("dag-greedy",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return dag_greedy_partition(g, ctx.state_bound);
         },
         nullptr, "topological first-fit packing"});
  r.add("dag-greedy-gain",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return dag_greedy_gain_partition(g, ctx.state_bound);
         },
         nullptr, "first-fit packing with gain-aware boundary retreat"});
  r.add("dag-refined",
        {refined_partition, nullptr, "best greedy start + FM-style local search"});
  r.add("anneal",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           // Strategies are self-contained pure functions (so sweep cells
           // stay hermetic), which means this rebuilds the refined start
           // instead of sharing dag-refined's work when both run in one
           // plan_all(); annealing dominates the cost anyway.
           AnnealOptions anneal;
           anneal.state_bound = ctx.state_bound;
           anneal.seed = ctx.seed;
           return anneal_partition(g, refined_partition(g, ctx), anneal);
         },
         nullptr, "simulated annealing from the refined start (seeded, deterministic)"});
  r.add("agglomerative",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return agglomerative_partition(g, ctx.state_bound);
         },
         nullptr, "heavy-edge clustering + refinement"});
  r.add("exact",
        {[](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           ExactOptions exact;
           exact.state_bound = ctx.state_bound;
           // An explicit request always attempts the graph; the budget gate
           // below only keeps plan_all()/auto from walking into exponential
           // blowups uninvited.
           exact.max_nodes = std::max(ctx.exact_max_nodes, g.node_count());
           const auto result = dag_exact_partition(g, exact);
           if (!result.has_value()) {
             throw Error("exact partitioner exceeded its budget; use a heuristic partitioner");
           }
           return result->partition;
         },
         [](const sdf::SdfGraph& g, const StrategyContext& ctx) {
           return g.node_count() <= ctx.exact_max_nodes;
         },
         "exponential ideal DP (small graphs only)"});
}

}  // namespace ccs::partition
