// Deterministic fixed-boundary latency histograms.
//
// The latency subsystem turns per-step modeled costs (latency::CostModel)
// into tail percentiles -- and percentiles only stay inside the repo's
// determinism gates (repeat-run, thread-count, threads ≡ virtual-time) if
// the whole accumulation path is exact integer arithmetic. A Histogram is
// therefore 64 fixed log2 buckets of int64 counters plus an exact max and
// sum: recording is a bit_width and an increment, merging is bucket-wise
// addition (associative and commutative BY CONSTRUCTION, which is what lets
// per-tenant histograms sum to the aggregate in any order), and quantile
// extraction is an integer rank walk. No floats anywhere -- the
// determinism lint's float-accumulation rule enforces that for this whole
// directory.
//
// Bucketing: sample v >= 0 lands in bucket bit_width(v) -- bucket 0 holds
// exactly {0}, bucket k >= 1 holds [2^(k-1), 2^k - 1]. A quantile reports
// its bucket's lower boundary, so power-of-two samples are EXACT; the
// topmost occupied bucket reports the exact tracked maximum instead, so
// the upper tail is exact too. Samples are modeled cycle counts (int64),
// so 64 buckets cover the full domain with no clamping.
#pragma once

#include <array>
#include <cstdint>

namespace ccs::latency {

/// Exact-merge log2-bucket histogram of non-negative int64 samples.
class Histogram {
 public:
  static constexpr std::int32_t kBucketCount = 64;

  /// Bucket index of a sample: 0 for 0, otherwise bit_width(v) (so bucket
  /// k >= 1 spans [2^(k-1), 2^k - 1]).
  static std::int32_t bucket_of(std::int64_t value) noexcept;

  /// Inclusive lower boundary of a bucket: 0, 1, 2, 4, 8, ...
  static std::int64_t bucket_floor(std::int32_t bucket) noexcept;

  /// Records one sample. Requires value >= 0 (modeled costs are counts).
  void record(std::int64_t value);

  /// Exact merge: bucket-wise addition, max of maxima, sum of sums.
  /// Associative and commutative, so shard/tenant histograms fold into an
  /// aggregate in any order with a bit-identical result.
  Histogram& operator+=(const Histogram& other) noexcept;

  friend Histogram operator+(Histogram a, const Histogram& b) noexcept {
    a += b;
    return a;
  }

  /// Samples recorded so far.
  std::int64_t count() const noexcept { return count_; }

  /// Exact sum of all samples (int64 adds; callers record modeled cycles,
  /// which stay far below the 2^63 overflow line for any feasible run).
  std::int64_t sum() const noexcept { return sum_; }

  /// Exact maximum sample (0 when empty).
  std::int64_t max() const noexcept { return max_; }

  std::int64_t bucket(std::int32_t index) const {
    return buckets_[static_cast<std::size_t>(index)];
  }
  const std::array<std::int64_t, kBucketCount>& buckets() const noexcept {
    return buckets_;
  }

  /// The permille-rank quantile (permille in [0, 1000]): the value below
  /// which at least ceil(permille * count / 1000) samples fall. Reports the
  /// chosen bucket's lower boundary -- exact for samples at bucket
  /// boundaries -- except in the topmost occupied bucket, where the exact
  /// tracked maximum is reported. Integer arithmetic throughout; 0 for an
  /// empty histogram.
  std::int64_t quantile_permille(std::int64_t permille) const;

  std::int64_t p50() const { return quantile_permille(500); }
  std::int64_t p95() const { return quantile_permille(950); }
  std::int64_t p99() const { return quantile_permille(990); }

  /// Rebuilds a histogram from serialized state (the swap codec). Derives
  /// the sample count from the buckets; throws ccs::Error when `max` or
  /// `sum` cannot belong to these bucket counts (a corrupt image must not
  /// unpack into an impossible histogram).
  static Histogram from_state(const std::array<std::int64_t, kBucketCount>& buckets,
                              std::int64_t max, std::int64_t sum);

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::int64_t, kBucketCount> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace ccs::latency
