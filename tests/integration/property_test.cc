// Parameterized property sweeps: the invariants every component must hold
// across seeds, sizes, and cache geometries.
#include <gtest/gtest.h>

#include "analysis/lower_bound.h"
#include "core/scheduler.h"
#include "partition/dag_exact.h"
#include "partition/dag_greedy.h"
#include "partition/dag_refine.h"
#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "schedule/validate.h"
#include "sdf/gain.h"
#include "sdf/min_buffer.h"
#include "sdf/repetition.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"

namespace ccs {
namespace {

// ---------------------------------------------------------------- pipelines

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, GreedyPartitionInvariants) {
  Rng rng(GetParam());
  const auto g = workloads::random_pipeline(25, 8, 220, 4, rng);
  const std::int64_t m = 256;
  const auto result = partition::pipeline_greedy_partition(g, m);
  EXPECT_TRUE(partition::validate_partition(g, result.partition).empty());
  EXPECT_TRUE(partition::is_well_ordered(g, result.partition));
  EXPECT_LE(partition::max_component_state(g, result.partition), 8 * m);
  EXPECT_EQ(result.cut_edges.size() + 1,
            static_cast<std::size_t>(result.partition.num_components));
}

TEST_P(PipelineSeedSweep, DpBandwidthIsMinimalAmongTestedPartitions) {
  Rng rng(GetParam());
  const auto g = workloads::random_pipeline(25, 8, 220, 4, rng);
  const std::int64_t bound = 3 * 256;
  const sdf::GainMap gains(g);
  const auto dp = partition::pipeline_optimal_partition(g, bound);
  // DP must not exceed any feasible alternative we can easily construct.
  const auto greedy = partition::pipeline_greedy_partition(g, 256);
  if (partition::max_component_state(g, greedy.partition) <= bound) {
    EXPECT_LE(dp.bandwidth, partition::bandwidth(g, gains, greedy.partition));
  }
  EXPECT_LE(dp.bandwidth, partition::bandwidth(g, gains, partition::Partition::singletons(g)));
}

TEST_P(PipelineSeedSweep, PartitionedScheduleValidates) {
  Rng rng(GetParam() + 1000);
  const auto g = workloads::random_pipeline(12, 8, 120, 3, rng);
  const auto dp = partition::pipeline_optimal_partition(g, 3 * 256);
  schedule::PartitionedOptions opts;
  opts.m = 256;
  const auto s = schedule::partitioned_schedule(g, dp.partition, opts);
  const auto report = schedule::check_schedule(g, s, 3);
  EXPECT_TRUE(report.ok) << report.problem;
  // Peak occupancy never exceeds declared capacity (check_schedule throws on
  // violation, but verify the peaks are recorded sane too).
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_LE(report.peak[static_cast<std::size_t>(e)], s.buffer_caps[static_cast<std::size_t>(e)]);
  }
}

TEST_P(PipelineSeedSweep, LowerBoundBelowSimulatedMisses) {
  Rng rng(GetParam() + 2000);
  const auto g = workloads::random_pipeline(14, 32, 200, 3, rng);
  const std::int64_t m = 384;
  const std::int64_t b = 8;
  const auto bound = analysis::pipeline_lower_bound(g, m);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);
  const auto r = core::simulate(g, naive, iomodel::CacheConfig{m, b},
                                2 * naive.outputs_per_period);
  EXPECT_GE(static_cast<double>(r.cache.misses) * 4.0,
            bound.misses(r.source_firings, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------- dags

class DagSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagSeedSweep, SeriesParallelModelInvariants) {
  Rng rng(GetParam());
  workloads::SeriesParallelSpec spec;
  spec.target_nodes = 24;
  const auto g = workloads::series_parallel_dag(spec, rng);
  EXPECT_TRUE(sdf::is_rate_matched(g));
  const sdf::RepetitionVector reps(g);
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    EXPECT_EQ(reps.count(edge.src) * edge.out_rate, reps.count(edge.dst) * edge.in_rate);
  }
  EXPECT_NO_THROW((void)sdf::feasible_buffers(g));
}

TEST_P(DagSeedSweep, GreedyAndRefinedPartitionsValid) {
  Rng rng(GetParam() + 500);
  workloads::SeriesParallelSpec spec;
  spec.target_nodes = 28;
  const auto g = workloads::series_parallel_dag(spec, rng);
  const std::int64_t bound = 3 * 300;
  const sdf::GainMap gains(g);
  const auto greedy = partition::dag_greedy_gain_partition(g, bound);
  EXPECT_TRUE(partition::is_well_ordered(g, greedy));
  EXPECT_TRUE(partition::is_bounded(g, greedy, bound));
  partition::RefineOptions ropts;
  ropts.state_bound = bound;
  const auto refined = partition::refine_partition(g, greedy, ropts);
  EXPECT_LE(partition::bandwidth(g, gains, refined),
            partition::bandwidth(g, gains, greedy));
}

TEST_P(DagSeedSweep, PartitionedScheduleValidatesOnDags) {
  Rng rng(GetParam() + 900);
  workloads::SeriesParallelSpec spec;
  spec.target_nodes = 18;
  spec.max_rate = 3;
  const auto g = workloads::series_parallel_dag(spec, rng);
  const std::int64_t m = std::max<std::int64_t>(g.max_state(), 256);
  const auto p = partition::dag_greedy_gain_partition(g, 3 * m);
  schedule::PartitionedOptions opts;
  opts.m = m;
  const auto s = schedule::partitioned_schedule(g, p, opts);
  const auto report = schedule::check_schedule(g, s, 2);
  EXPECT_TRUE(report.ok) << report.problem;
}

TEST_P(DagSeedSweep, ExactNeverAboveHeuristicsOnSmallLayered) {
  Rng rng(GetParam() + 1300);
  workloads::LayeredSpec spec;
  spec.layers = 3;
  spec.width = 3;
  spec.state_lo = 60;
  spec.state_hi = 140;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const std::int64_t bound = 420;
  const sdf::GainMap gains(g);
  partition::ExactOptions eopts;
  eopts.state_bound = bound;
  const auto exact = partition::dag_exact_partition(g, eopts);
  ASSERT_TRUE(exact.has_value());
  const auto greedy = partition::dag_greedy_partition(g, bound);
  EXPECT_LE(exact->bandwidth, partition::bandwidth(g, gains, greedy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagSeedSweep, ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------------------------------------- cache geometries

struct Geometry {
  std::int64_t m;
  std::int64_t b;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, PartitionedBeatsNaiveWheneverStateExceedsCache) {
  const auto [m, b] = GetParam();
  // Scale module state with the cache so total state (16m) always dwarfs
  // even the 4x-augmented simulation cache -- the regime the theorem is
  // about (when everything fits, any schedule is trivially cheap).
  const auto g = workloads::uniform_pipeline(16, m);
  core::PlannerOptions opts;
  opts.cache.capacity_words = m;
  opts.cache.block_words = b;
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);
  const iomodel::CacheConfig sim{4 * m, b};
  const std::int64_t target = 2 * plan.schedule.outputs_per_period;
  const auto r_part = core::simulate(g, plan.schedule, sim, target);
  const auto r_naive = core::simulate(g, naive, sim, target);
  EXPECT_LT(r_part.misses_per_output(), r_naive.misses_per_output());
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(Geometry{256, 4}, Geometry{256, 8},
                                           Geometry{512, 8}, Geometry{512, 16},
                                           Geometry{1024, 8}, Geometry{1024, 32}));

}  // namespace
}  // namespace ccs
