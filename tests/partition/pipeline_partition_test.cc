#include <gtest/gtest.h>

#include "partition/pipeline_dp.h"
#include "partition/pipeline_greedy.h"
#include "sdf/gain.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/pipelines.h"

namespace ccs::partition {
namespace {

using sdf::SdfGraph;

TEST(PipelineGreedy, SegmentsExceedTwoM) {
  const auto g = ccs::workloads::uniform_pipeline(30, 100);  // total 3000
  const std::int64_t m = 250;
  const auto result = pipeline_greedy_partition(g, m);
  ASSERT_FALSE(result.segments.empty());
  // Every segment except possibly the last must exceed 2M.
  for (std::size_t i = 0; i + 1 < result.segments.size(); ++i) {
    std::int64_t state = 0;
    for (std::int32_t pos = result.segments[i].first; pos <= result.segments[i].last; ++pos) {
      state += g.node(pos).state;
    }
    EXPECT_GT(state, 2 * m) << "segment " << i;
  }
}

TEST(PipelineGreedy, ComponentsWithinEightM) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = ccs::workloads::random_pipeline(40, 1, 200, 4, rng);
    const std::int64_t m = 220;  // > max module state
    const auto result = pipeline_greedy_partition(g, m);
    EXPECT_LE(max_component_state(g, result.partition), 8 * m) << "trial " << trial;
    EXPECT_TRUE(is_well_ordered(g, result.partition));
  }
}

TEST(PipelineGreedy, CutsAreGainMinimizing) {
  // Hourglass: gains dip at the waist; the single cut of a 2-segment
  // accretion must pick a low-gain edge, not just the midpoint.
  const auto g = ccs::workloads::hourglass_pipeline(12, 100, 2);
  const auto result = pipeline_greedy_partition(g, 300);
  const sdf::GainMap gains(g);
  ASSERT_FALSE(result.cut_edges.empty());
  // Every chosen cut's gain must be minimal within its segment; spot-check
  // by confirming none of the cuts has a gain above the graph's median edge.
  std::vector<Rational> all_gains;
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) all_gains.push_back(gains.edge_gain(e));
  std::sort(all_gains.begin(), all_gains.end());
  const Rational median = all_gains[all_gains.size() / 2];
  for (const sdf::EdgeId e : result.cut_edges) {
    EXPECT_LE(gains.edge_gain(e), median);
  }
}

TEST(PipelineGreedy, TinyPipelineSingleComponent) {
  const auto g = ccs::workloads::uniform_pipeline(3, 10);
  const auto result = pipeline_greedy_partition(g, 100);  // total 30 < 2M
  EXPECT_EQ(result.partition.num_components, 1);
  EXPECT_TRUE(result.cut_edges.empty());
}

TEST(PipelineGreedy, OversizedModuleRejected) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  EXPECT_THROW(pipeline_greedy_partition(g, 50), Error);
}

TEST(PipelineGreedy, RejectsNonPipeline) {
  SdfGraph g;
  g.add_node("s", 1);
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_node("t", 1);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_THROW(pipeline_greedy_partition(g, 10), GraphError);
}

TEST(PipelineDp, FindsObviousCut) {
  // Two 100-state halves joined by a gain-1 edge; every other edge has gain 4.
  SdfGraph g;
  for (int i = 0; i < 6; ++i) g.add_node("m" + std::to_string(i), 50);
  g.add_edge(0, 1, 1, 1);  // gain 1 -- but cutting here leaves 4 modules right
  g.add_edge(1, 2, 4, 1);  // gain 4
  g.add_edge(2, 3, 1, 16); // gain 16? no: gain(2)=4, edge gain = 4*1=4; in=16 -> gain(3)=1/4
  g.add_edge(3, 4, 1, 1);  // gain(3)=1/4, edge gain 1/4
  g.add_edge(4, 5, 1, 1);  // gain 1/4
  const auto result = pipeline_optimal_partition(g, 150);  // max 3 modules per segment
  EXPECT_TRUE(is_well_ordered(g, result.partition));
  EXPECT_LE(max_component_state(g, result.partition), 150);
  // Optimal: cut at edge 2->3 (gain 1/4... wait, edge 2->3 has gain 4) --
  // verify optimality against brute force instead of eyeballing.
  const sdf::GainMap gains(g);
  Rational best = result.bandwidth;
  // Brute force all 2^5 cut subsets.
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<std::vector<sdf::NodeId>> comps;
    comps.emplace_back();
    for (int i = 0; i < 6; ++i) {
      comps.back().push_back(i);
      if (i < 5 && (mask >> i & 1)) comps.emplace_back();
    }
    const auto p = Partition::from_components(g, comps);
    if (max_component_state(g, p) > 150) continue;
    EXPECT_GE(bandwidth(g, gains, p), best) << "mask " << mask;
  }
}

TEST(PipelineDp, MatchesBruteForceOnRandomPipelines) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = ccs::workloads::random_pipeline(9, 10, 60, 4, rng);
    const std::int64_t bound = 140;
    if (g.max_state() > bound) continue;
    const auto dp = pipeline_optimal_partition(g, bound);
    const sdf::GainMap gains(g);
    Rational brute = Rational(std::numeric_limits<std::int32_t>::max());
    const int cuts = g.node_count() - 1;
    for (int mask = 0; mask < (1 << cuts); ++mask) {
      std::vector<std::vector<sdf::NodeId>> comps;
      comps.emplace_back();
      for (sdf::NodeId i = 0; i < g.node_count(); ++i) {
        comps.back().push_back(i);
        if (i < cuts && (mask >> i & 1)) comps.emplace_back();
      }
      const auto p = Partition::from_components(g, comps);
      if (max_component_state(g, p) > bound) continue;
      brute = std::min(brute, bandwidth(g, gains, p));
    }
    EXPECT_EQ(dp.bandwidth, brute) << "trial " << trial;
  }
}

TEST(PipelineDp, BandwidthNeverAboveGreedy) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = ccs::workloads::random_pipeline(30, 10, 150, 4, rng);
    const std::int64_t m = 200;
    const sdf::GainMap gains(g);
    const auto greedy = pipeline_greedy_partition(g, m);
    // Compare at the greedy partition's own bound (8M) so both are feasible.
    const auto dp = pipeline_optimal_partition(g, 8 * m);
    EXPECT_LE(dp.bandwidth, bandwidth(g, gains, greedy.partition)) << "trial " << trial;
  }
}

TEST(PipelineDp, SingleSegmentWhenEverythingFits) {
  const auto g = ccs::workloads::uniform_pipeline(5, 10);
  const auto result = pipeline_optimal_partition(g, 1000);
  EXPECT_EQ(result.partition.num_components, 1);
  EXPECT_EQ(result.bandwidth, Rational(0));
}

TEST(PipelineDp, InfeasibleModuleThrows) {
  const auto g = ccs::workloads::uniform_pipeline(4, 100);
  EXPECT_THROW(pipeline_optimal_partition(g, 99), Error);
}

}  // namespace
}  // namespace ccs::partition
