#include "iomodel/layout.h"

#include "util/contracts.h"
#include "util/int_math.h"

namespace ccs::iomodel {

MemoryLayout::MemoryLayout(std::int64_t block_words, Addr base)
    : block_words_(block_words) {
  CCS_EXPECTS(block_words >= 1, "block size must be positive");
  CCS_EXPECTS(base >= 0, "address base must be non-negative");
  cursor_ = round_up(base, block_words_);
}

Region MemoryLayout::allocate(std::int64_t words, const std::string& label,
                              bool block_align) {
  CCS_EXPECTS(words >= 0, "negative region size");
  const Addr base = block_align ? round_up(cursor_, block_words_) : cursor_;
  const Region region{base, words};
  cursor_ = checked_add(base, words);
  allocated_.push_back(region);
  labels_.push_back(label);
  return region;
}

std::string MemoryLayout::label_at(Addr a) const {
  for (std::size_t i = 0; i < allocated_.size(); ++i) {
    if (allocated_[i].contains(a)) return labels_[i];
  }
  return "";
}

}  // namespace ccs::iomodel
