// Failure injection: every entry point must reject model violations loudly
// rather than produce silently-wrong schedules or measurements.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "schedule/naive.h"
#include "schedule/partitioned.h"
#include "schedule/validate.h"
#include "sdf/gain.h"
#include "sdf/min_buffer.h"
#include "sdf/topology.h"
#include "sdf/validate.h"
#include "util/error.h"
#include "workloads/pipelines.h"

namespace ccs {
namespace {

core::PlannerOptions planner_512() {
  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  return opts;
}

TEST(Failure, CyclicGraphRejectedEverywhere) {
  sdf::SdfGraph g;
  const auto a = g.add_node("a", 8);
  const auto b = g.add_node("b", 8);
  const auto c = g.add_node("c", 8);
  g.add_edge(a, b, 1, 1);
  g.add_edge(b, c, 1, 1);
  g.add_edge(c, a, 1, 1);
  EXPECT_THROW((void)sdf::topological_sort(g), GraphError);
  EXPECT_THROW((void)sdf::GainMap{g}, GraphError);
  EXPECT_THROW(core::plan(g, planner_512()), GraphError);
}

TEST(Failure, RateMismatchRejectedByPlanner) {
  sdf::SdfGraph g;
  const auto s = g.add_node("s", 8);
  const auto x = g.add_node("x", 8);
  const auto y = g.add_node("y", 8);
  const auto t = g.add_node("t", 8);
  g.add_edge(s, x, 2, 1);
  g.add_edge(s, y, 1, 1);
  g.add_edge(x, t, 1, 1);
  g.add_edge(y, t, 1, 1);
  EXPECT_THROW(core::plan(g, planner_512()), GraphError);
}

TEST(Failure, ModuleLargerThanCacheRejected) {
  const auto g = ccs::workloads::uniform_pipeline(4, 600);
  EXPECT_THROW(core::plan(g, planner_512()), GraphError);
}

TEST(Failure, SimulateDemandsPositiveTarget) {
  const auto g = ccs::workloads::uniform_pipeline(4, 8);
  const auto s = schedule::naive_minimal_buffer_schedule(g);
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 8}, 0), ContractViolation);
}

TEST(Failure, ScheduleWithForeignBufferVectorRejected) {
  const auto g = ccs::workloads::uniform_pipeline(4, 8);
  auto s = schedule::naive_minimal_buffer_schedule(g);
  s.buffer_caps.pop_back();  // wrong arity
  EXPECT_FALSE(schedule::check_schedule(g, s).ok);
  // The engine treats a wrong-arity capacity vector as caller misuse.
  EXPECT_THROW(core::simulate(g, s, iomodel::CacheConfig{512, 8}, 16), ContractViolation);
}

TEST(Failure, TamperedPeriodDetected) {
  const auto g = ccs::workloads::uniform_pipeline(4, 8);
  auto s = schedule::naive_minimal_buffer_schedule(g);
  // Swap two firings so a consumer runs before its producer.
  std::swap(s.period.front(), s.period.back());
  const auto report = schedule::check_schedule(g, s);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.problem.empty());
}

TEST(Failure, PartitionedSchedulerValidatesPartitionArity) {
  const auto g = ccs::workloads::uniform_pipeline(6, 8);
  partition::Partition p;
  p.num_components = 2;
  p.assignment = {0, 0, 1};  // wrong size
  schedule::PartitionedOptions opts;
  opts.m = 64;
  EXPECT_THROW(schedule::partitioned_schedule(g, p, opts), Error);
}

TEST(Failure, ZeroAndNegativeCacheGeometriesRejected) {
  EXPECT_THROW((iomodel::CacheConfig{0, 8}).capacity_blocks(), ContractViolation);
  EXPECT_THROW(iomodel::LruCache(iomodel::CacheConfig{4, 8}), ContractViolation);
}

TEST(Failure, FeasibleBuffersRejectNonRateMatched) {
  sdf::SdfGraph g;
  const auto s = g.add_node("s", 8);
  const auto x = g.add_node("x", 8);
  const auto y = g.add_node("y", 8);
  const auto t = g.add_node("t", 8);
  g.add_edge(s, x, 3, 1);
  g.add_edge(s, y, 1, 1);
  g.add_edge(x, t, 1, 1);
  g.add_edge(y, t, 1, 1);
  EXPECT_THROW((void)sdf::feasible_buffers(g), Error);
}

TEST(Failure, EmptyGraphHasNoPlanOrStats) {
  sdf::SdfGraph g;
  EXPECT_THROW(core::plan(g, planner_512()), GraphError);
  EXPECT_FALSE(sdf::validate(g, sdf::ValidationOptions{}).empty());
}

TEST(Failure, MultiSourceGraphsNeedExplicitOptOut) {
  sdf::SdfGraph g;
  g.add_node("s1", 8);
  g.add_node("s2", 8);
  const auto t = g.add_node("t", 8);
  g.add_edge(0, t, 1, 1);
  g.add_edge(1, t, 1, 1);
  EXPECT_THROW(core::plan(g, planner_512()), GraphError);
}

}  // namespace
}  // namespace ccs
