#include "core/cluster.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "util/contracts.h"
#include "util/error.h"
#include "util/format.h"
#include "util/stats.h"

namespace ccs::core {

namespace {

// The engine reserves [2^40, ...) for external streams; tenant bands must
// stay below it (mirrors kExternalInBase in runtime/engine.cc).
constexpr std::int64_t kBandSpaceWords = std::int64_t{1} << 40;

/// Shared "pure load balance" rule: least busy, then fewest tenants, then
/// the session's current worker, then lowest id (every tie must break
/// deterministically -- the cluster's repeat-run guarantee rides on it).
/// The current worker's tenant count excludes the session being placed:
/// moving it elsewhere would not lighten the current worker by more than
/// the session itself, so an equally-loaded target is never worth a move.
WorkerId pick_least_loaded(const PlacementRequest& request,
                           const std::vector<ClusterWorkerStatus>& workers) {
  const auto effective_tenants = [&](const ClusterWorkerStatus& w) {
    return w.id == request.current ? w.tenants - 1 : w.tenants;
  };
  const ClusterWorkerStatus* best = nullptr;
  for (const ClusterWorkerStatus& w : workers) {
    if (best == nullptr) {
      best = &w;
      continue;
    }
    if (w.busy != best->busy) {
      if (w.busy < best->busy) best = &w;
      continue;
    }
    if (effective_tenants(w) != effective_tenants(*best)) {
      if (effective_tenants(w) < effective_tenants(*best)) best = &w;
      continue;
    }
    if (w.id == request.current && best->id != request.current) best = &w;
  }
  return best->id;
}

/// Static striping: admissions cycle through workers; a placed session
/// never moves (the zero-migration baseline).
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  WorkerId place(const PlacementRequest& request,
                 const std::vector<ClusterWorkerStatus>& workers) override {
    if (request.current != kNoWorker) return request.current;
    const WorkerId w = static_cast<WorkerId>(
        next_ % static_cast<std::int64_t>(workers.size()));
    ++next_;
    return w;
  }

 private:
  std::int64_t next_ = 0;
};

/// Follow the busy-time balance wherever it points, ignoring cache state --
/// the pure load-balance extreme of the paper's §7 trade; every move pays
/// real reload misses.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  WorkerId place(const PlacementRequest& request,
                 const std::vector<ClusterWorkerStatus>& workers) override {
    return pick_least_loaded(request, workers);
  }
};

/// Shared cache-affinity rule: the worker whose private L1 holds the most
/// of the session's working set wins; the current worker wins residency
/// ties, so a warm session never bounces between equally-warm workers. A
/// cold session (no blocks resident anywhere) falls back to least-loaded.
/// Factored out because the adaptive policy must reproduce it exactly when
/// its migration thresholds never fire (the differential-test contract).
WorkerId pick_affinity(const PlacementRequest& request,
                       const std::vector<ClusterWorkerStatus>& workers) {
  WorkerId best = kNoWorker;
  std::int64_t best_resident = 0;
  for (const ClusterWorkerStatus& w : workers) {
    const auto slot = static_cast<std::size_t>(w.id);
    const std::int64_t resident =
        slot < request.resident_blocks.size() ? request.resident_blocks[slot] : 0;
    const bool warmer = resident > best_resident;
    const bool tied_at_current =
        resident == best_resident && resident > 0 && w.id == request.current;
    if (warmer || tied_at_current) {
      best = w.id;
      best_resident = resident;
    }
  }
  return best != kNoWorker ? best : pick_least_loaded(request, workers);
}

class AffinityPlacement final : public PlacementPolicy {
 public:
  WorkerId place(const PlacementRequest& request,
                 const std::vector<ClusterWorkerStatus>& workers) override {
    return pick_affinity(request, workers);
  }
};

/// Footprint-driven placement: affinity while everyone fits, headroom-
/// seeking when the affinity choice is oversubscribed by hot footprints.
/// The policy itself is stateless and threshold-free -- the cluster
/// classifies sessions (placement::FootprintEstimator) and fills the
/// request/status footprint fields; a cold or express session always takes
/// the plain affinity path, which is what makes never-fire adaptive
/// placement decision-for-decision identical to "affinity".
class AdaptivePlacement final : public PlacementPolicy {
 public:
  bool adaptive() const noexcept override { return true; }

  WorkerId place(const PlacementRequest& request,
                 const std::vector<ClusterWorkerStatus>& workers) override {
    const WorkerId home = pick_affinity(request, workers);
    if (!request.hot || request.footprint_words <= 0) return home;
    // Hot pressure on w if this session ran there: its footprint moves with
    // it, so it stops counting against its current worker.
    const auto pressure_with = [&](const ClusterWorkerStatus& w) {
      const std::int64_t others =
          w.id == request.current ? w.hot_words - request.footprint_words : w.hot_words;
      return others + request.footprint_words;
    };
    const ClusterWorkerStatus& chosen = workers[static_cast<std::size_t>(home)];
    if (pressure_with(chosen) <= chosen.l1_words) return home;
    // The affinity choice cannot hold this session's working set alongside
    // the other hot tenants: shed to the worker with the most headroom.
    // Ties prefer the current worker (a symmetric overload never migrates),
    // then the least busy, then the lowest id.
    const ClusterWorkerStatus* best = nullptr;
    std::int64_t best_headroom = 0;
    for (const ClusterWorkerStatus& w : workers) {
      const std::int64_t headroom = w.l1_words - pressure_with(w);
      if (best == nullptr) {
        best = &w;
        best_headroom = headroom;
        continue;
      }
      if (headroom != best_headroom) {
        if (headroom > best_headroom) {
          best = &w;
          best_headroom = headroom;
        }
        continue;
      }
      if ((w.id == request.current) != (best->id == request.current)) {
        if (w.id == request.current) best = &w;
        continue;
      }
      if (w.busy < best->busy) best = &w;
    }
    return best->id;
  }
};

void write_cache_stats_json(std::ostream& os, const iomodel::CacheStats& s) {
  os << "{\"accesses\": " << s.accesses << ", \"hits\": " << s.hits
     << ", \"misses\": " << s.misses << ", \"writebacks\": " << s.writebacks << "}";
}

void write_histogram_json(std::ostream& os, const latency::Histogram& h) {
  os << "{\"samples\": " << h.count() << ", \"cycles\": " << h.sum()
     << ", \"p50\": " << h.p50() << ", \"p95\": " << h.p95()
     << ", \"p99\": " << h.p99() << ", \"max\": " << h.max() << "}";
}

}  // namespace

PlacementRegistry& PlacementRegistry::global() {
  static PlacementRegistry instance;
  static const bool initialized = (register_builtin_placements(instance), true);
  (void)initialized;
  return instance;
}

void register_builtin_placements(PlacementRegistry& r) {
  r.add("round-robin",
        {[] { return std::make_unique<RoundRobinPlacement>(); },
         "static striping at admission; a placed session never migrates"});
  r.add("least-loaded",
        {[] { return std::make_unique<LeastLoadedPlacement>(); },
         "follow the busy-time balance, ignoring cache state (pays reloads)"});
  r.add("affinity",
        {[] { return std::make_unique<AffinityPlacement>(); },
         "keep a session on the worker whose private cache holds its working "
         "set; least-loaded when cold"});
  r.add("adaptive",
        {[] { return std::make_unique<AdaptivePlacement>(); },
         "affinity, plus footprint-driven shedding when a worker's private "
         "cache is oversubscribed by hot working sets or thrashing"});
}

std::int64_t ClusterReport::makespan() const {
  std::int64_t worst = 0;
  for (const ClusterWorkerReport& w : workers) worst = std::max(worst, w.busy);
  return worst;
}

double ClusterReport::imbalance() const {
  std::vector<std::int64_t> busy;
  busy.reserve(workers.size());
  for (const ClusterWorkerReport& w : workers) busy.push_back(w.busy);
  return busy_imbalance(busy);
}

void ClusterReport::write_json(std::ostream& os) const {
  std::ostringstream balance;
  balance << std::setprecision(15) << imbalance();
  os << "{\n  \"placement\": \"" << json_escape(placement) << "\""
     << ", \"workers\": " << workers.size() << ", \"llc_shards\": " << llc_shards
     << ", \"steps\": " << steps
     << ", \"rounds\": " << rounds << ", \"migrations\": " << migrations
     << ", \"auto_migrations\": " << auto_migrations
     << ", \"migration_noops\": " << migration_noops
     << ", \"retired_sessions\": " << retired_sessions
     << ", \"makespan\": " << makespan() << ", \"imbalance\": " << balance.str();
  // The whole lifecycle block on ONE line: swap-on vs swap-off
  // differentials strip it with `grep -v '"lifecycle"'` and byte-compare
  // the rest.
  os << ",\n  \"lifecycle\": {\"sessions_opened\": " << lifecycle.sessions_opened
     << ", \"sessions_closed\": " << lifecycle.sessions_closed
     << ", \"live_sessions\": " << lifecycle.live_sessions
     << ", \"swapped_sessions\": " << lifecycle.swapped_sessions
     << ", \"peak_live\": " << lifecycle.peak_live
     << ", \"resident_words\": " << lifecycle.resident_words
     << ", \"peak_resident_words\": " << lifecycle.peak_resident_words
     << ", \"swap_outs\": " << lifecycle.swap_outs
     << ", \"swap_ins\": " << lifecycle.swap_ins
     << ", \"admissions_rejected\": " << lifecycle.admissions_rejected
     << ", \"admissions_queued\": " << lifecycle.admissions_queued
     << ", \"swap_stored_bytes\": " << swap_stored_bytes
     << ", \"swap_peak_stored_bytes\": " << swap_peak_stored_bytes << "}";
  os << ",\n  \"retired\": {\"accesses\": " << retired.cache.accesses
     << ", \"misses\": " << retired.cache.misses
     << ", \"firings\": " << retired.firings
     << ", \"source_firings\": " << retired.source_firings
     << ", \"sink_firings\": " << retired.sink_firings << "}"
     << ",\n  \"aggregate\": {\"accesses\": " << aggregate.cache.accesses
     << ", \"hits\": " << aggregate.cache.hits
     << ", \"misses\": " << aggregate.cache.misses
     << ", \"writebacks\": " << aggregate.cache.writebacks
     << ", \"firings\": " << aggregate.firings
     << ", \"source_firings\": " << aggregate.source_firings
     << ", \"sink_firings\": " << aggregate.sink_firings
     << ", \"state_misses\": " << aggregate.state_misses
     << ", \"channel_misses\": " << aggregate.channel_misses
     << ", \"io_misses\": " << aggregate.io_misses << "},\n  \"llc\": ";
  write_cache_stats_json(os, llc);
  // The whole latency block on ONE line (mirroring "lifecycle" above): the
  // uniform-model strict-extension gate strips it with `grep -v '"latency"'`
  // and byte-compares the rest against the pre-latency golden capture.
  os << ",\n  \"latency\": {\"cost_model\": \"" << json_escape(cost_model)
     << "\", \"slo_p99\": " << slo_p99 << ", \"total_cost\": " << aggregate.cost
     << ", \"aggregate\": ";
  write_histogram_json(os, aggregate.latency);
  os << ", \"workers\": [";
  for (std::size_t w = 0; w < workers.size(); ++w) {
    os << (w == 0 ? "" : ", ");
    write_histogram_json(os, workers[w].latency);
  }
  os << "], \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const ClusterTenantReport& t = tenants[i];
    os << (i == 0 ? "" : ", ") << "{\"id\": " << t.id
       << ", \"cost\": " << t.totals.cost << ", \"hist\": ";
    write_histogram_json(os, t.totals.latency);
    os << ", \"slo_ok\": "
       << (slo_p99 <= 0 || t.totals.latency.p99() <= slo_p99 ? "true" : "false")
       << "}";
  }
  os << "]}";
  os << ",\n  \"worker_table\": [";
  for (std::size_t w = 0; w < workers.size(); ++w) {
    os << (w == 0 ? "\n" : ",\n") << "    {\"worker\": " << w
       << ", \"busy\": " << workers[w].busy << ", \"steps\": " << workers[w].steps
       << ", \"tenants\": " << workers[w].tenants << ", \"l1\": ";
    write_cache_stats_json(os, workers[w].l1);
    os << "}";
  }
  os << "\n  ],\n  \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const ClusterTenantReport& t = tenants[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << t.id << ", \"name\": \""
       << json_escape(t.name) << "\", \"state\": \"" << session::to_string(t.state)
       << "\", \"worker\": " << t.worker << ", \"steps\": " << t.steps
       << ", \"outputs\": " << t.outputs << ", \"migrations\": " << t.migrations
       << ", \"accesses\": " << t.totals.cache.accesses
       << ", \"misses\": " << t.totals.cache.misses
       << ", \"writebacks\": " << t.totals.cache.writebacks
       << ", \"firings\": " << t.totals.firings
       << ", \"source_firings\": " << t.totals.source_firings
       << ", \"sink_firings\": " << t.totals.sink_firings << "}";
  }
  os << "\n  ]\n}\n";
}

Cluster::Cluster(ClusterOptions options, const PlacementRegistry* registry)
    : options_(std::move(options)),
      pool_(runtime::WorkerPoolOptions{options_.workers, options_.l1,
                                       options_.llc_words, options_.llc_shards}) {
  const PlacementRegistry& reg =
      registry != nullptr ? *registry : PlacementRegistry::global();
  latency::CostContext cost_ctx;
  cost_ctx.workers = options_.workers;
  cost_ctx.llc_shards = options_.llc_shards;
  cost_ctx.has_llc = options_.llc_words > 0;
  cost_model_ = latency::CostModelRegistry::global().build(options_.cost_model, cost_ctx);
  policy_ = reg.find(options_.placement).build();
  admission_ = session::AdmissionRegistry::global().build(options_.admission,
                                                          options_.budget);
  if (options_.band_words < options_.l1.block_words ||
      options_.band_words % options_.l1.block_words != 0) {
    throw Error("band_words must be a positive multiple of the cache block size");
  }
  workers_.resize(static_cast<std::size_t>(pool_.size()));
  // The estimator classifies against the cache a session actually runs in.
  if (options_.adaptive.footprint.budget_words == 0) {
    options_.adaptive.footprint.budget_words = options_.l1.capacity_words;
  }
  estimator_ = placement::FootprintEstimator(options_.adaptive.footprint);
  l1_window_base_.resize(static_cast<std::size_t>(pool_.size()));
}

TenantId Cluster::admit(std::string name, const sdf::SdfGraph& g,
                        const partition::Partition& p, StreamOptions options,
                        std::int64_t m) {
  CCS_EXPECTS(!name.empty(), "tenant name must be non-empty");
  CCS_EXPECTS(m >= 0, "tenant cache share must be non-negative");
  for (const auto& [tid, t] : tenants_) {
    if (t.name == name) throw Error("tenant '" + name + "' is already admitted");
  }
  const std::int64_t effective_m = m > 0 ? m : options_.l1.capacity_words;

  // Price the candidate before building anything (see Server::admit).
  schedule::OnlineContext ctx;
  ctx.m = effective_m;
  const auto pricing_policy =
      schedule::OnlineRegistry::global().build(options.policy, g, p, ctx);
  const std::int64_t layout_words = runtime::layout_footprint_words(
      g, pricing_policy->buffer_caps(), options_.l1.block_words,
      options.engine.block_align_buffers);
  if (layout_words > options_.band_words) {
    throw Error("session layout (" + std::to_string(layout_words) +
                " words) exceeds band_words (" + std::to_string(options_.band_words) +
                "); raise ClusterOptions::band_words");
  }

  session::AdmissionRequest arequest;
  arequest.layout_words = layout_words;
  bool evicted_for_room = false;
  while (!admission_->admits(current_load(), arequest)) {
    const session::SwapManager::SessionKey victim =
        options_.swap
            ? swap_.victim_if([this](session::SwapManager::SessionKey k) {
                return tenants_.at(static_cast<TenantId>(k)).idle;
              })
            : session::SwapManager::kNone;
    if (victim == session::SwapManager::kNone) {
      ++lifecycle_.admissions_rejected;
      return kNoTenant;
    }
    const TenantId vid = static_cast<TenantId>(victim);
    swap_out_tenant(vid, tenants_.at(vid));
    evicted_for_room = true;
  }
  if (evicted_for_room) ++lifecycle_.admissions_queued;

  // Same banding scheme as core::Server: each session gets a disjoint
  // band_words-wide slab below the engines' external-stream bands, so
  // sessions contend for cache blocks on whatever worker (and shared LLC)
  // they meet instead of silently aliasing. Closed sessions' bands recycle.
  std::int64_t band;
  if (!free_bands_.empty()) {
    band = *free_bands_.begin();
    free_bands_.erase(free_bands_.begin());
  } else {
    if (next_band_ >= kBandSpaceWords / options_.band_words) {
      throw Error("cluster address space exhausted: at most " +
                  std::to_string(kBandSpaceWords / options_.band_words) +
                  " co-open sessions at band_words=" +
                  std::to_string(options_.band_words) +
                  " (close sessions or shrink band_words)");
    }
    band = next_band_++;
  }
  options.engine.address_base = band * options_.band_words;

  const TenantId id = next_id_;
  PlacementRequest request;
  request.tenant = id;
  request.current = kNoWorker;
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) request.state_words += g.node(v).state;
  request.resident_blocks.assign(static_cast<std::size_t>(pool_.size()), 0);
  const WorkerId home = checked_placement(request);

  Tenant t;
  t.name = std::move(name);
  t.worker = home;
  t.band = band;
  t.layout_words = layout_words;
  t.graph = g;
  t.partition = p;
  t.stream_options = options;
  t.m = effective_m;
  t.stream = std::make_unique<Stream>(g, p, pool_.worker_cache(home), effective_m,
                                      std::move(options));
  t.stream->set_cost_model(&cost_model_);
  const auto [it, inserted] = tenants_.emplace(id, std::move(t));
  CCS_CHECK(inserted, "tenant id reused");
  ++next_id_;
  workers_[static_cast<std::size_t>(home)].tenants.push_back(id);
  ++lifecycle_.sessions_opened;
  lifecycle_.on_resident(layout_words);
  swap_.admit(id);
  // Seed the footprint estimate from the gain-analysis layout (state plus
  // channel rings) -- the paper's working-set bound made concrete. The
  // estimator is indexed by tenant id (monotonic, one add per admission).
  const runtime::FootprintSample seed = it->second.stream->footprint_sample();
  estimator_.add_session(seed.layout_words, seed.state_words);
  return id;
}

TenantId Cluster::admit(std::string name, const Planner& planner, const Plan& plan,
                        StreamOptions options) {
  return admit(std::move(name), planner.graph(), plan.partition, std::move(options));
}

void Cluster::throw_unknown_tenant(TenantId id) const {
  std::string msg = "unknown tenant id " + std::to_string(id) + "; live tenants:";
  if (tenants_.empty()) {
    msg += " (none)";
  } else {
    bool first = true;
    for (const auto& [tid, t] : tenants_) {
      msg += (first ? " " : ", ");
      msg += std::to_string(tid) + " '" + t.name + "'";
      first = false;
    }
  }
  throw Error(msg);
}

Cluster::Tenant& Cluster::tenant(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  return it->second;
}

const Cluster::Tenant& Cluster::tenant(TenantId id) const {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  return it->second;
}

session::AdmissionLoad Cluster::current_load() const {
  session::AdmissionLoad load;
  load.live_sessions = lifecycle_.live_sessions;
  load.resident_words = lifecycle_.resident_words;
  return load;
}

void Cluster::swap_out_tenant(TenantId id, Tenant& t) {
  CCS_EXPECTS(t.stream != nullptr, "tenant is already swapped out");
  const StreamState state = t.stream->save_state();
  t.totals = state.totals;
  t.steps = state.steps;
  t.outputs = t.stream->outputs_produced();
  session::SessionSnapshot snapshot;
  snapshot.engine = state.engine;
  snapshot.totals = state.totals;
  snapshot.steps = state.steps;
  session::SwapImage image = session::SwapImage::pack(snapshot);
  // Same round-trip self-check as Server::swap_out_tenant: the image is the
  // session's only copy once the host objects are freed.
  CCS_AUDIT(image.unpack() == snapshot,
            "swap image does not round-trip the session snapshot");
  swap_.swap_out(id, std::move(image));
  t.stream.reset();
  t.idle = true;  // swapped sessions are idle by construction
  lifecycle_.on_nonresident(t.layout_words);
  ++lifecycle_.swapped_sessions;
  ++lifecycle_.swap_outs;
}

void Cluster::rehydrate(TenantId id, Tenant& t) {
  CCS_EXPECTS(t.stream == nullptr, "tenant is not swapped out");
  const session::SessionSnapshot snapshot = swap_.swap_in(id).unpack();
  // Back onto the worker that last served it -- placement is pinned across
  // a swap, so swap-on and swap-off runs make identical decisions.
  StreamOptions options = t.stream_options;
  t.stream = std::make_unique<Stream>(t.graph, t.partition,
                                      pool_.worker_cache(t.worker), t.m,
                                      std::move(options));
  t.stream->set_cost_model(&cost_model_);
  StreamState state;
  state.engine = snapshot.engine;
  state.totals = snapshot.totals;
  state.steps = snapshot.steps;
  t.stream->restore_state(state);
  lifecycle_.on_resident(t.layout_words);
  --lifecycle_.swapped_sessions;
  ++lifecycle_.swap_ins;
}

Stream& Cluster::stream(TenantId id) {
  Tenant& t = tenant(id);
  if (t.stream == nullptr) rehydrate(id, t);
  return *t.stream;
}

const Stream& Cluster::stream(TenantId id) const {
  const Tenant& t = tenant(id);
  if (t.stream == nullptr) {
    throw Error("tenant " + std::to_string(id) +
                " is swapped out; use the non-const accessor to rehydrate");
  }
  return *t.stream;
}

const std::string& Cluster::tenant_name(TenantId id) const { return tenant(id).name; }

WorkerId Cluster::worker_of(TenantId id) const { return tenant(id).worker; }

session::SessionState Cluster::state_of(TenantId id) const {
  const Tenant& t = tenant(id);
  if (t.stream == nullptr) return session::SessionState::kSwapped;
  return t.idle ? session::SessionState::kIdle : session::SessionState::kLive;
}

bool Cluster::swapped(TenantId id) const { return tenant(id).stream == nullptr; }

void Cluster::swap_out(TenantId id) {
  CCS_EXPECTS(options_.swap, "swap_out requires ClusterOptions::swap");
  Tenant& t = tenant(id);
  if (t.stream == nullptr) {
    throw Error("tenant " + std::to_string(id) + " is already swapped out");
  }
  if (!t.idle) {
    throw Error("tenant " + std::to_string(id) +
                " is not idle; only idle sessions can be swapped out");
  }
  swap_out_tenant(id, t);
}

std::int64_t Cluster::swap_out_idle() {
  CCS_EXPECTS(options_.swap, "swap_out_idle requires ClusterOptions::swap");
  std::int64_t evicted = 0;
  for (auto& [id, t] : tenants_) {
    if (t.stream != nullptr && t.idle) {
      swap_out_tenant(id, t);
      ++evicted;
    }
  }
  return evicted;
}

void Cluster::close(TenantId id) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  Tenant& t = it->second;
  if (t.stream != nullptr) {
    retired_ += t.stream->stats();
    lifecycle_.on_nonresident(t.layout_words);
  } else {
    retired_ += t.totals;
    --lifecycle_.swapped_sessions;
  }
  Worker& home = workers_[static_cast<std::size_t>(t.worker)];
  home.tenants.erase(std::find(home.tenants.begin(), home.tenants.end(), id));
  home.cursor = 0;  // keep the rotation point deterministic after the edit
  swap_.erase(id);
  free_bands_.insert(t.band);
  tenants_.erase(it);
  ++lifecycle_.sessions_closed;
}

std::int64_t Cluster::push(TenantId id, std::int64_t items) {
  Tenant& t = tenant(id);
  if (t.stream == nullptr) rehydrate(id, t);
  const std::int64_t accepted = t.stream->push(items);
  if (accepted > 0) {
    t.idle = false;  // new arrivals may unblock the session
    swap_.touch(id);
  }
  return accepted;
}

bool Cluster::worker_step(WorkerId w) {
  Worker& worker = workers_[static_cast<std::size_t>(w)];
  const std::size_t n = worker.tenants.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t slot = (worker.cursor + probe) % n;
    Tenant& t = tenants_.at(worker.tenants[slot]);
    if (t.idle) continue;  // swapped tenants are idle, so never stepped
    const StepResult r = t.stream->step();
    if (!r.progressed()) {
      t.idle = true;  // stays blocked until the controlling thread pushes
      continue;
    }
    // Virtual time advances by the step's modeled cost (== firings under
    // the "uniform" model, preserving the pre-latency clock bit-for-bit).
    worker.busy += r.run.cost;
    worker.latency.record(r.run.cost);
    ++worker.steps;
    worker.cursor = (slot + 1) % n;
    return true;
  }
  return false;
}

std::int64_t Cluster::step_round() {
  std::int64_t progressed = 0;
  for (WorkerId w = 0; w < worker_count(); ++w) {
    if (worker_step(w)) ++progressed;
  }
  if (progressed > 0) ++rounds_;
  return progressed;
}

std::int64_t Cluster::run_until_idle() {
  adapt();
  std::int64_t executed = 0;
  for (std::int64_t p = step_round(); p > 0; p = step_round()) executed += p;
  return executed;
}

std::int64_t Cluster::run_threads() {
  adapt();  // on the controlling thread, while still quiescent -- exactly
            // the adaptation point run_until_idle uses, so both modes see
            // identical placements before the first step.
  // One thread per worker, each running the same worker_step loop virtual
  // time runs. A worker touches only its own Worker struct, its own
  // tenants, and its own private L1; the shared LLC is the only contended
  // state and SharedLlcCache serializes it internally.
  std::vector<std::int64_t> executed(static_cast<std::size_t>(worker_count()), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(worker_count()));
  for (WorkerId w = 0; w < worker_count(); ++w) {
    threads.emplace_back([this, w, &executed] {
      while (worker_step(w)) ++executed[static_cast<std::size_t>(w)];
    });
  }
  for (std::thread& t : threads) t.join();
  std::int64_t total = 0;
  for (const std::int64_t e : executed) total += e;
  return total;
}

std::vector<ClusterWorkerStatus> Cluster::worker_statuses() const {
  std::vector<ClusterWorkerStatus> out;
  out.reserve(static_cast<std::size_t>(worker_count()));
  for (WorkerId w = 0; w < worker_count(); ++w) {
    const Worker& worker = workers_[static_cast<std::size_t>(w)];
    ClusterWorkerStatus s;
    s.id = w;
    s.busy = worker.busy;
    s.steps = worker.steps;
    s.tenants = static_cast<std::int32_t>(worker.tenants.size());
    s.misses = pool_.worker_stats(w).misses;
    s.l1_words = options_.l1.capacity_words;
    if (adaptive_active()) {
      for (const TenantId id : worker.tenants) {
        if (id < estimator_.session_count() && estimator_.hot(id) &&
            tenants_.at(id).stream != nullptr) {
          s.hot_words += estimator_.footprint_words(id);
        }
      }
    }
    out.push_back(s);
  }
  return out;
}

PlacementRequest Cluster::request_for(TenantId id) const {
  const Tenant& t = tenant(id);
  PlacementRequest request;
  request.tenant = id;
  request.current = t.worker;
  // Module-state words, matching what admit() reports before the stream
  // exists -- a policy thresholding on state_words must see one number.
  const sdf::SdfGraph& g = t.stream->graph();
  for (sdf::NodeId v = 0; v < g.node_count(); ++v) request.state_words += g.node(v).state;
  request.resident_blocks.reserve(static_cast<std::size_t>(pool_.size()));
  for (WorkerId w = 0; w < worker_count(); ++w) {
    request.resident_blocks.push_back(pool_.resident_blocks(w, t.stream->layout_span()));
  }
  if (adaptive_active() && id < estimator_.session_count()) {
    request.footprint_words = estimator_.footprint_words(id);
    request.hot = estimator_.hot(id);
  }
  return request;
}

WorkerId Cluster::checked_placement(const PlacementRequest& request) {
  const WorkerId w = policy_->place(request, worker_statuses());
  CCS_CHECK(w >= 0 && w < worker_count(), "placement policy picked an invalid worker");
  return w;
}

std::int64_t Cluster::rebalance() {
  std::int64_t moved = 0;
  // Swapped tenants stay pinned: they have no cache state to be affine to,
  // and no live footprint to shed; they re-enter placement churn only after
  // rehydration.
  std::vector<TenantId> resident;
  for (const auto& [id, t] : tenants_) {
    if (t.stream != nullptr) resident.push_back(id);
  }
  for (const TenantId id : resident) {
    const WorkerId target = checked_placement(request_for(id));
    if (target != tenant(id).worker) {
      migrate(id, target);
      ++moved;
    }
  }
  return moved;
}

std::int64_t Cluster::adapt() {
  if (!policy_->adaptive()) return 0;
  observe_footprints();
  if (!options_.adaptive.migrate) return 0;
  if (!migration_trigger_fired()) return 0;
  const std::int64_t moved = rebalance();
  auto_migrations_ += moved;
  return moved;
}

void Cluster::observe_footprints() {
  for (const auto& [id, t] : tenants_) {
    if (t.stream == nullptr) continue;  // swapped: no live traffic to window
    const runtime::FootprintSample sample = t.stream->footprint_sample();
    placement::FootprintObservation o;
    o.accesses = sample.accesses;
    o.misses = sample.misses;
    o.resident_words = pool_.resident_words(t.worker, t.stream->layout_span());
    estimator_.observe(id, o);
  }
}

bool Cluster::migration_trigger_fired() {
  const placement::AdaptiveOptions& a = options_.adaptive;
  bool fired = false;
  // Oversubscription: some worker's resident hot footprints exceed its
  // allowance of the private cache.
  const std::int64_t allowance = options_.l1.capacity_words * a.oversub_permille / 1000;
  std::vector<std::int64_t> hot_words(workers_.size(), 0);
  for (const auto& [id, t] : tenants_) {
    if (t.stream != nullptr && estimator_.hot(id)) {
      hot_words[static_cast<std::size_t>(t.worker)] += estimator_.footprint_words(id);
    }
  }
  for (const std::int64_t pressure : hot_words) {
    if (pressure > allowance) fired = true;
  }
  // Thrash: a busy worker's private-L1 window miss rate at the threshold.
  // Under the inclusive hierarchy every private miss is one shared-LLC
  // probe, so this is equally the worker's LLC pressure-delta signal -- and
  // unlike raw LLC hit/miss splits it is identical across execution modes.
  for (WorkerId w = 0; w < worker_count(); ++w) {
    const iomodel::CacheStats& now = pool_.worker_stats(w);
    iomodel::CacheStats& base = l1_window_base_[static_cast<std::size_t>(w)];
    const std::int64_t accesses = now.accesses - base.accesses;
    const std::int64_t misses = now.misses - base.misses;
    base = now;  // every adaptation point starts a fresh window
    if (!workers_[static_cast<std::size_t>(w)].tenants.empty() &&
        accesses >= a.min_window_accesses &&
        misses * 1000 >= a.thrash_miss_permille * accesses) {
      fired = true;
    }
  }
  return fired;
}

void Cluster::migrate(TenantId id, WorkerId target) {
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) throw_unknown_tenant(id);
  CCS_EXPECTS(target >= 0 && target < worker_count(), "worker id out of range");
  Tenant& t = it->second;
  if (t.stream == nullptr) rehydrate(id, t);  // a move touches live state
  if (t.worker == target) {
    // Counted no-op: nothing reloads, nothing moves, but drivers retrying
    // placement decisions can see how often they asked for one.
    ++migration_noops_;
    return;
  }
  Worker& from = workers_[static_cast<std::size_t>(t.worker)];
  from.tenants.erase(std::find(from.tenants.begin(), from.tenants.end(), id));
  from.cursor = 0;  // keep the rotation point deterministic after the edit
  Worker& to = workers_[static_cast<std::size_t>(target)];
  to.tenants.push_back(id);
  t.stream->migrate_cache(pool_.worker_cache(target));
  t.worker = target;
  ++t.migrations;
  ++migrations_;
}

void Cluster::drain_all() {
  for (auto& [id, t] : tenants_) {
    if (t.stream == nullptr) rehydrate(id, t);
    const runtime::RunResult r = t.stream->drain();
    // Drain work executes on the tenant's worker cache; account its cost
    // there so makespan covers the tail work too (it is priced but not a
    // histogram sample -- see Stream::drain).
    workers_[static_cast<std::size_t>(t.worker)].busy += r.cost;
    t.idle = true;
  }
}

ClusterReport Cluster::report() const {
  ClusterReport report;
  report.placement = options_.placement;
  report.cost_model = options_.cost_model;
  report.slo_p99 = options_.slo_p99;
  report.llc_shards = pool_.llc_shards();
  report.rounds = rounds_;
  report.migrations = migrations_;
  report.auto_migrations = auto_migrations_;
  report.migration_noops = migration_noops_;
  report.retired = retired_;
  report.retired_sessions = lifecycle_.sessions_closed;
  report.lifecycle = lifecycle_;
  report.swap_stored_bytes = swap_.stored_bytes();
  report.swap_peak_stored_bytes = swap_.peak_stored_bytes();
  report.aggregate = retired_;
  for (const auto& [id, t] : tenants_) {
    ClusterTenantReport row;
    row.id = id;
    row.name = t.name;
    if (t.stream != nullptr) {
      row.state = t.idle ? session::SessionState::kIdle : session::SessionState::kLive;
      row.totals = t.stream->stats();
      row.steps = t.stream->steps();
      row.outputs = t.stream->outputs_produced();
    } else {
      row.state = session::SessionState::kSwapped;
      row.totals = t.totals;
      row.steps = t.steps;
      row.outputs = t.outputs;
    }
    row.worker = t.worker;
    row.migrations = t.migrations;
    report.aggregate += row.totals;
    report.tenants.push_back(std::move(row));
  }
  for (WorkerId w = 0; w < worker_count(); ++w) {
    const Worker& worker = workers_[static_cast<std::size_t>(w)];
    ClusterWorkerReport row;
    row.l1 = pool_.worker_stats(w);
    row.busy = worker.busy;
    row.latency = worker.latency;
    row.steps = worker.steps;
    row.tenants = static_cast<std::int32_t>(worker.tenants.size());
    report.steps += worker.steps;
    report.workers.push_back(row);
  }
  if (pool_.has_llc()) report.llc = pool_.llc_stats();
  return report;
}

schedule::ParallelResult simulate_parallel_on_pool(const sdf::SdfGraph& g,
                                                   const partition::Partition& p,
                                                   std::int64_t m,
                                                   runtime::WorkerPool& pool,
                                                   std::int64_t min_outputs) {
  std::vector<iomodel::CacheSim*> caches;
  caches.reserve(static_cast<std::size_t>(pool.size()));
  for (std::int32_t w = 0; w < pool.size(); ++w) caches.push_back(&pool.worker_cache(w));
  iomodel::CacheStats llc_before;
  if (pool.has_llc()) llc_before = pool.llc_stats();
  schedule::ParallelResult result =
      schedule::simulate_parallel_homogeneous(g, p, m, caches, min_outputs);
  if (pool.has_llc()) {
    const iomodel::CacheStats& now = pool.llc_stats();
    result.llc.accesses = now.accesses - llc_before.accesses;
    result.llc.hits = now.hits - llc_before.hits;
    result.llc.misses = now.misses - llc_before.misses;
    result.llc.writebacks = now.writebacks - llc_before.writebacks;
  }
  return result;
}

}  // namespace ccs::core
