// Compile-time SIMD batching knobs for the bulk cache loops.
//
// The bulk block paths (LruCache::do_access_blocks, the set-associative way
// probe) process per-block tag work in fixed-width groups so the pure
// arithmetic stages -- hash, table load, tag compare -- run over short
// constant-trip-count loops the compiler can vectorize (and, failing that,
// unroll into independent scalar chains, which already breaks the
// load-to-use serialization of a one-block-at-a-time loop). The group width
// is chosen here from the target ISA at compile time; every use site keeps
// the one-block scalar body for group tails and slow paths, so there is no
// runtime dispatch and no counter difference between builds -- the SIMD
// path is a pure execution strategy, gated bit-identical by the
// bulk-vs-scalar differential suite.
#pragma once

namespace ccs::iomodel::simd {

/// Blocks per probe group in the bulk loops. 8 on ISAs with 256-bit+
/// vectors and gathers (AVX2/AVX-512), 4 elsewhere -- four independent
/// 64-bit lanes is what 128-bit vectors (SSE2/NEON) or plain scalar
/// unrolling sustain without spilling.
#if defined(__AVX512F__) || defined(__AVX2__)
inline constexpr int kProbeBatch = 8;
#else
inline constexpr int kProbeBatch = 4;
#endif

/// True when the batch width was picked for a real vector ISA (for
/// diagnostics/benchmark labels only; both paths are always compiled).
#if defined(__AVX512F__) || defined(__AVX2__) || defined(__SSE2__) || \
    defined(__ARM_NEON)
inline constexpr bool kVectorIsa = true;
#else
inline constexpr bool kVectorIsa = false;
#endif

}  // namespace ccs::iomodel::simd

/// Marks a fixed-width batch loop as dependence-free so the vectorizer does
/// not give up on the (provably independent) gathers/compares inside.
#if defined(__clang__)
#define CCS_SIMD_LOOP \
  _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define CCS_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define CCS_SIMD_LOOP
#endif
