#include "analysis/lower_bound.h"

#include "partition/dag_exact.h"
#include "partition/pipeline_dp.h"
#include "sdf/gain.h"

namespace ccs::analysis {

PipelineBound pipeline_lower_bound(const sdf::SdfGraph& g, std::int64_t m) {
  const auto greedy = partition::pipeline_greedy_partition(g, m);
  const sdf::GainMap gains(g);
  PipelineBound bound;
  bound.segments = greedy.segments;
  bound.witness_edges = greedy.cut_edges;
  bound.bandwidth_term = Rational(0);
  // Theorem 3 requires segments of state >= 2M; the accretion only closes a
  // segment after exceeding 2M, but the final segment may be smaller when
  // the whole tail is light -- it contributes no witness edge in that case,
  // matching the one-cut-per-qualifying-segment construction.
  for (const sdf::EdgeId e : greedy.cut_edges) {
    bound.bandwidth_term += gains.edge_gain(e);
  }
  return bound;
}

std::optional<Rational> dag_min_bandwidth_3m(const sdf::SdfGraph& g, std::int64_t m,
                                             std::int32_t max_exact_nodes) {
  const std::int64_t bound = 3 * m;
  if (g.max_state() > bound) return std::nullopt;  // no 3-bounded partition exists
  if (g.is_pipeline()) {
    return partition::pipeline_min_bandwidth(g, bound);
  }
  return partition::min_bandwidth(g, bound, max_exact_nodes);
}

double bound_misses(const Rational& bw, std::int64_t t, std::int64_t b) {
  return static_cast<double>(t) / static_cast<double>(b) * bw.to_double();
}

}  // namespace ccs::analysis
