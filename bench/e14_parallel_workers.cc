// E14 -- parallel asynchronous component scheduling (extension; Sections 3
// and 7 of the paper).
//
// The homogeneous component schedule generalizes to P asynchronous workers
// with private caches. Sweep P on a wide layered dag. Expected shape
// (paper Section 7): total misses stay near the uniprocessor count (misses
// are a schedule property, parallelism only adds per-worker reloads), while
// makespan drops until the partition's component parallelism is exhausted.

#include "bench/common.h"
#include "partition/dag_greedy.h"
#include "schedule/parallel.h"
#include "util/rng.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  Rng rng(1414);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 6;
  spec.state_lo = 150;
  spec.state_hi = 300;
  spec.edge_prob = 0.15;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const std::int64_t m = 128;          // batch tokens per cross edge
  const std::int64_t cache_words = 4096;
  const auto p = partition::dag_greedy_partition(g, 900);

  Table t("E14: parallel workers on a wide homogeneous dag (26 modules, " +
          std::to_string(p.num_components) + " components)");
  t.set_header({"workers", "makespan", "speedup", "total misses", "misses vs 1w",
                "imbalance"});
  std::int64_t base_makespan = 0;
  std::int64_t base_misses = 0;
  for (const std::int32_t workers : {1, 2, 4, 8}) {
    const auto r =
        schedule::simulate_parallel_homogeneous(g, p, m, cache_words, 8, workers, 4096);
    if (workers == 1) {
      base_makespan = r.makespan;
      base_misses = r.total_misses;
    }
    t.add_row({Table::num(static_cast<std::int64_t>(workers)), Table::num(r.makespan),
               bench::safe_ratio(static_cast<double>(base_makespan),
                                 static_cast<double>(r.makespan)),
               Table::num(r.total_misses),
               bench::safe_ratio(static_cast<double>(r.total_misses),
                                 static_cast<double>(base_misses)),
               Table::num(r.imbalance(), 2)});
  }
  bench::emit(t, argc, argv);
  return 0;
}
