#include "sdf/validate.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "workloads/streamit.h"

namespace ccs::sdf {
namespace {

TEST(Validate, AcceptsStreamItSuite) {
  ValidationOptions opts;
  for (const auto& app : ccs::workloads::streamit_suite()) {
    EXPECT_TRUE(validate(app.graph, opts).empty()) << app.name;
    EXPECT_NO_THROW(validate_or_throw(app.graph, opts)) << app.name;
  }
}

TEST(Validate, EmptyGraphRejected) {
  SdfGraph g;
  const auto problems = validate(g, ValidationOptions{});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no modules"), std::string::npos);
}

TEST(Validate, MultipleSourcesReported) {
  SdfGraph g;
  g.add_node("s1", 1);
  g.add_node("s2", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(0, t, 1, 1);
  g.add_edge(1, t, 1, 1);
  const auto problems = validate(g, ValidationOptions{});
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("source"), std::string::npos);
}

TEST(Validate, MultipleSinksReported) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  g.add_node("t1", 1);
  g.add_node("t2", 1);
  g.add_edge(s, 1, 1, 1);
  g.add_edge(s, 2, 1, 1);
  const auto problems = validate(g, ValidationOptions{});
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("sink"), std::string::npos);
}

TEST(Validate, SingleEndRequirementsCanBeRelaxed) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  g.add_node("t1", 1);
  g.add_node("t2", 1);
  g.add_edge(s, 1, 1, 1);
  g.add_edge(s, 2, 1, 1);
  ValidationOptions opts;
  opts.require_single_sink = false;
  EXPECT_TRUE(validate(g, opts).empty());
}

TEST(Validate, OversizedModuleReported) {
  SdfGraph g;
  const NodeId a = g.add_node("a", 100);
  const NodeId b = g.add_node("b", 10);
  g.add_edge(a, b, 1, 1);
  ValidationOptions opts;
  opts.max_module_state = 64;
  const auto problems = validate(g, opts);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("'a'"), std::string::npos);
}

TEST(Validate, RateMismatchReported) {
  SdfGraph g;
  const NodeId s = g.add_node("s", 1);
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(s, a, 2, 1);
  g.add_edge(s, b, 1, 1);
  g.add_edge(a, t, 1, 1);
  g.add_edge(b, t, 1, 1);
  const auto problems = validate(g, ValidationOptions{});
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("rate matched"), std::string::npos);
}

TEST(Validate, ThrowListsAllProblems) {
  SdfGraph g;
  g.add_node("s1", 100);
  g.add_node("s2", 100);
  const NodeId t = g.add_node("t", 1);
  g.add_edge(0, t, 1, 1);
  g.add_edge(1, t, 1, 1);
  ValidationOptions opts;
  opts.max_module_state = 50;
  try {
    validate_or_throw(g, opts);
    FAIL() << "expected GraphError";
  } catch (const GraphError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("source"), std::string::npos);
    EXPECT_NE(what.find("exceeds cache size"), std::string::npos);
  }
}

}  // namespace
}  // namespace ccs::sdf
