// End-to-end integration: plan -> simulate across every workload family,
// with the theory's ordering relations checked on real miss counts.
#include <gtest/gtest.h>

#include "analysis/lower_bound.h"
#include "core/scheduler.h"
#include "schedule/kohli.h"
#include "schedule/naive.h"
#include "schedule/scaled.h"
#include "schedule/validate.h"
#include "sdf/serialize.h"
#include "util/rng.h"
#include "workloads/pipelines.h"
#include "workloads/random_dag.h"
#include "workloads/streamit.h"

namespace ccs {
namespace {

TEST(EndToEnd, PlanAndSimulateEveryStreamItApp) {
  for (const auto& app : workloads::streamit_suite()) {
    core::PlannerOptions opts;
    opts.cache.capacity_words = std::max<std::int64_t>(app.graph.max_state() * 2, 1024);
    opts.cache.block_words = 8;
    const auto plan = core::plan(app.graph, opts);
    ASSERT_TRUE(schedule::check_schedule(app.graph, plan.schedule).ok) << app.name;
    const iomodel::CacheConfig sim{4 * opts.cache.capacity_words, 8};
    const auto r = core::simulate(app.graph, plan.schedule, sim,
                                  plan.schedule.outputs_per_period);
    EXPECT_GT(r.sink_firings, 0) << app.name;
    EXPECT_GT(r.cache.misses, 0) << app.name;
  }
}

TEST(EndToEnd, LowerBoundHoldsForAllSchedulersOnPipelines) {
  // Theorem 3: no schedule can beat (T/B) * sum of witness gains. Verify on
  // real miss counts for every scheduler in the library.
  Rng rng(101);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = workloads::random_pipeline(16, 64, 256, 3, rng);
    const std::int64_t m = 512;
    const std::int64_t b = 8;
    const auto bound = analysis::pipeline_lower_bound(g, m);
    if (bound.bandwidth_term.is_zero()) continue;

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);

    std::vector<schedule::Schedule> schedules;
    schedules.push_back(plan.schedule);
    schedules.push_back(schedule::naive_minimal_buffer_schedule(g));
    schedules.push_back(schedule::scaled_schedule(g, m));
    schedules.push_back(schedule::kohli_schedule(g, m));

    const iomodel::CacheConfig sim{m, b};  // bound is stated for cache size M
    for (const auto& s : schedules) {
      const std::int64_t target = 4 * s.outputs_per_period;
      const auto r = core::simulate(g, s, sim, target);
      const double lb = bound.misses(r.source_firings, b);
      EXPECT_GE(static_cast<double>(r.cache.misses) * 4.0, lb)
          << s.name << " trial " << trial;
    }
  }
}

TEST(EndToEnd, PartitionedWithinConstantOfLowerBound) {
  // Theorem 5: the partitioned schedule on an O(M) cache costs O(LB).
  Rng rng(103);
  for (int trial = 0; trial < 3; ++trial) {
    const auto g = workloads::random_pipeline(20, 64, 256, 3, rng);
    const std::int64_t m = 512;
    const std::int64_t b = 8;
    const auto bound = analysis::pipeline_lower_bound(g, m);
    if (bound.bandwidth_term.is_zero()) continue;

    core::PlannerOptions opts;
    opts.cache.capacity_words = m;
    opts.cache.block_words = b;
    const auto plan = core::plan(g, opts);
    const iomodel::CacheConfig sim{8 * m, b};  // O(1) augmentation
    const auto r = core::simulate(g, plan.schedule, sim, 4 * plan.schedule.outputs_per_period);
    const double lb = bound.misses(r.source_firings, b);
    // Constant factor: generous 64x envelope (covers external IO, state
    // loads, and the Omega constants the bound drops).
    EXPECT_LE(static_cast<double>(r.cache.misses), 64.0 * lb + 1000.0)
        << "trial " << trial;
  }
}

TEST(EndToEnd, SerializationRoundTripsThroughPlanning) {
  const auto g = workloads::fm_radio(6);
  const auto text = sdf::to_text(g);
  const auto parsed = sdf::from_text(text);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 1024;
  opts.cache.block_words = 8;
  const auto plan1 = core::plan(g, opts);
  const auto plan2 = core::plan(parsed, opts);
  EXPECT_EQ(plan1.partition.assignment, plan2.partition.assignment);
  EXPECT_EQ(plan1.schedule.period, plan2.schedule.period);
}

TEST(EndToEnd, HomogeneousDagPartitionedVsNaive) {
  Rng rng(107);
  workloads::LayeredSpec spec;
  spec.layers = 6;
  spec.width = 3;
  spec.state_lo = 150;
  spec.state_hi = 250;
  const auto g = layered_homogeneous_dag(spec, rng);

  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  opts.partitioner = "dag-refined";
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  const iomodel::CacheConfig sim{4 * 512, 8};
  const std::int64_t target = 2048;
  const auto r_part = core::simulate(g, plan.schedule, sim, target);
  const auto r_naive = core::simulate(g, naive, sim, target);
  EXPECT_LT(r_part.misses_per_output(), r_naive.misses_per_output());
}

TEST(EndToEnd, SetAssociativeCacheShowsSameOrdering) {
  // The paper's model is fully associative; conclusions should survive
  // 8-way associativity (realistic geometry).
  const auto g = workloads::uniform_pipeline(16, 200);
  core::PlannerOptions opts;
  opts.cache.capacity_words = 512;
  opts.cache.block_words = 8;
  const auto plan = core::plan(g, opts);
  const auto naive = schedule::naive_minimal_buffer_schedule(g);

  const iomodel::CacheConfig geometry{2048, 8};
  auto run_on = [&](const schedule::Schedule& s) {
    iomodel::SetAssociativeCache cache(geometry, 8);
    runtime::Engine engine(g, s.buffer_caps, cache);
    runtime::RunResult total;
    const auto rounds = schedule::periods_for_outputs(s, 2048);
    for (std::int64_t i = 0; i < rounds; ++i) {
      total += engine.run(s.period);
    }
    return total;
  };
  const auto r_part = run_on(plan.schedule);
  const auto r_naive = run_on(naive);
  EXPECT_LT(r_part.misses_per_output(), r_naive.misses_per_output());
}

}  // namespace
}  // namespace ccs
