// Aligned console tables + CSV output for the experiment harness.
//
// Every bench binary prints its results through Table so experiment output
// has a uniform, grep-able format: a title line, a header row, aligned data
// rows, and (optionally) a CSV dump for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccs {

/// Column alignment for console rendering.
enum class Align { kLeft, kRight };

/// A simple string-celled table builder.
///
/// Usage:
///   Table t("E1: misses vs cache size");
///   t.set_header({"M", "naive", "partitioned", "ratio"});
///   t.add_row({"4096", "120000", "9100", "13.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Column names; must be set before adding rows.
  void set_header(std::vector<std::string> header);

  /// Per-column alignment; default is right-aligned for all columns.
  void set_align(std::vector<Align> align);

  /// Append one data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  const std::string& title() const noexcept { return title_; }

  /// Render with box-drawing-free ASCII alignment.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows, comma separated, minimal quoting).
  void print_csv(std::ostream& os) const;

  /// Helpers to format numeric cells consistently across benches.
  static std::string num(std::int64_t v);
  static std::string num(double v, int precision = 2);
  static std::string ratio(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccs
