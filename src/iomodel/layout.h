// Address-space layout for simulated streaming programs.
//
// Module state and channel buffers live in disjoint regions of the flat
// simulated address space. Regions are block-aligned by default so that a
// region of s words occupies exactly ceil(s/B) blocks and no two regions
// share a block -- matching the paper's accounting, where loading a
// component's state costs Theta(state/B) misses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iomodel/types.h"

namespace ccs::iomodel {

/// A contiguous run of words in the simulated address space.
struct Region {
  Addr base = 0;
  std::int64_t words = 0;

  Addr end() const noexcept { return base + words; }
  bool contains(Addr a) const noexcept { return a >= base && a < end(); }
};

/// Bump allocator over the simulated address space ("disk" is unbounded; the
/// layout only provides disjointness and alignment).
class MemoryLayout {
 public:
  /// Allocation starts at `base` rounded up to a block boundary. Distinct
  /// bases give co-resident programs (multi-tenant engines sharing one
  /// cache) disjoint address ranges, so their blocks contend instead of
  /// silently aliasing.
  explicit MemoryLayout(std::int64_t block_words, Addr base = 0);

  /// Allocates `words` (possibly 0). With `block_align` (the default) the
  /// region starts on a block boundary and no other region shares its
  /// blocks, so an s-word region costs exactly ceil(s/B) blocks to touch --
  /// the right model for module state. Pass false to pack the region
  /// tightly against the previous one; small channel buffers share blocks
  /// this way (realistic, and it keeps sum-of-minBuf footprints O(tokens)
  /// rather than O(edges * B)).
  Region allocate(std::int64_t words, const std::string& label, bool block_align = true);

  /// Total words spanned so far (including alignment padding).
  std::int64_t footprint() const noexcept { return cursor_; }

  /// Region count.
  std::size_t regions() const noexcept { return labels_.size(); }

  /// Label of the region covering `a`, or "" if none (for diagnostics).
  std::string label_at(Addr a) const;

 private:
  std::int64_t block_words_;
  Addr cursor_ = 0;
  std::vector<Region> allocated_;
  std::vector<std::string> labels_;
};

}  // namespace ccs::iomodel
