// Belady's OPT (furthest-future-use) replacement on a recorded trace.
//
// OPT is offline-optimal for fetch counts, so it gives tests and experiments
// an absolute yardstick: LRU with 2x capacity must never do worse than
// (roughly) 2x OPT misses [Sleator & Tarjan 1985], and no schedule's miss
// count can beat OPT on its own trace.
#pragma once

#include <cstdint>
#include <vector>

#include "iomodel/types.h"

namespace ccs::iomodel {

/// Number of misses OPT incurs on `block_trace` with `capacity_blocks`
/// resident blocks (cold start). The trace is a sequence of block ids.
std::int64_t opt_misses(const std::vector<BlockId>& block_trace,
                        std::int64_t capacity_blocks);

/// Converts a word-address trace into a block trace for a given geometry.
std::vector<BlockId> to_block_trace(const std::vector<Addr>& addr_trace,
                                    std::int64_t block_words);

}  // namespace ccs::iomodel
