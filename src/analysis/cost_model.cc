#include "analysis/cost_model.h"

#include <cmath>

#include "sdf/gain.h"
#include "sdf/min_buffer.h"
#include "util/int_math.h"

namespace ccs::analysis {

CostPrediction predict_partitioned_cost(const sdf::SdfGraph& g,
                                        const partition::Partition& p, std::int64_t t,
                                        std::int64_t b) {
  CCS_EXPECTS(t > 0 && b > 0, "batch size and block size must be positive");
  const sdf::GainMap gains(g);
  const auto internal_caps = sdf::feasible_buffers(g);
  const auto states = partition::component_states(g, p);

  CostPrediction cost;
  for (const std::int64_t s : states) {
    cost.state_term += static_cast<double>(ceil_div(s, b));
  }
  for (sdf::EdgeId e = 0; e < g.edge_count(); ++e) {
    const sdf::Edge& edge = g.edge(e);
    if (p.comp(edge.src) == p.comp(edge.dst)) {
      cost.buffer_term +=
          static_cast<double>(ceil_div(internal_caps[static_cast<std::size_t>(e)], b));
    } else {
      // Written by the producer component and read by the consumer: the
      // batch's tokens cross the cache boundary twice.
      cost.cross_term += 2.0 * static_cast<double>(t) * gains.edge_gain(e).to_double() /
                         static_cast<double>(b);
    }
  }
  cost.misses_per_batch = cost.state_term + cost.buffer_term + cost.cross_term;
  cost.misses_per_input = cost.misses_per_batch / static_cast<double>(t);
  return cost;
}

}  // namespace ccs::analysis
