// E14 -- parallel asynchronous component scheduling (extension; Sections 3
// and 7 of the paper).
//
// The homogeneous component schedule generalizes to P asynchronous workers
// with private caches. Sweep P on a wide layered dag. Expected shape
// (paper Section 7): total misses stay near the uniprocessor count (misses
// are a schedule property, parallelism only adds per-worker reloads), while
// makespan drops until the partition's component parallelism is exhausted.
//
// Since PR 5 the simulator runs over runtime::WorkerPool -- the same
// private-L1 worker caches the core::Cluster serving stack shards sessions
// onto -- with per-worker counters bit-identical to the old hand-rolled
// caches (tests/schedule/parallel_golden_test.cc pins this). `--llc-words=N`
// backs the workers with a shared LLC and adds its traffic to the table;
// `--json` emits one schedule::write_parallel_json line per worker count so
// CI can diff repeat runs exactly like sweep CSVs.

#include <string>

#include "bench/common.h"
#include "core/cluster.h"
#include "partition/dag_greedy.h"
#include "runtime/worker_pool.h"
#include "schedule/serialize.h"
#include "util/rng.h"
#include "workloads/random_dag.h"

int main(int argc, char** argv) {
  using namespace ccs;
  bool json = false;
  std::int64_t llc_words = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    if (arg.rfind("--llc-words=", 0) == 0) llc_words = std::stoll(arg.substr(12));
  }

  Rng rng(1414);
  workloads::LayeredSpec spec;
  spec.layers = 4;
  spec.width = 6;
  spec.state_lo = 150;
  spec.state_hi = 300;
  spec.edge_prob = 0.15;
  const auto g = workloads::layered_homogeneous_dag(spec, rng);
  const std::int64_t m = 128;          // batch tokens per cross edge
  const std::int64_t cache_words = 4096;
  const auto p = partition::dag_greedy_partition(g, 900);

  Table t("E14: parallel workers on a wide homogeneous dag (26 modules, " +
          std::to_string(p.num_components) + " components" +
          (llc_words > 0 ? ", shared " + std::to_string(llc_words) + "-word LLC" : "") +
          ")");
  t.set_header({"workers", "makespan", "speedup", "total misses", "misses vs 1w",
                "imbalance", "LLC misses"});
  std::int64_t base_makespan = 0;
  std::int64_t base_misses = 0;
  for (const std::int32_t workers : {1, 2, 4, 8}) {
    runtime::WorkerPool pool(
        runtime::WorkerPoolOptions{workers, {cache_words, 8}, llc_words});
    const auto r = core::simulate_parallel_on_pool(g, p, m, pool, 4096);
    if (json) {
      schedule::write_parallel_json(r, std::cout);
      std::cout << "\n";
    }
    if (workers == 1) {
      base_makespan = r.makespan;
      base_misses = r.total_misses;
    }
    t.add_row({Table::num(static_cast<std::int64_t>(workers)), Table::num(r.makespan),
               bench::safe_ratio(static_cast<double>(base_makespan),
                                 static_cast<double>(r.makespan)),
               Table::num(r.total_misses),
               bench::safe_ratio(static_cast<double>(r.total_misses),
                                 static_cast<double>(base_misses)),
               Table::num(r.imbalance(), 2),
               llc_words > 0 ? Table::num(r.llc.misses) : "-"});
  }
  if (!json) bench::emit(t, argc, argv);
  return 0;
}
